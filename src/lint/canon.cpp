#include "lint/canon.hpp"

#include <cctype>
#include <cstddef>
#include <regex>
#include <sstream>
#include <string>

namespace epp::lint {
namespace {

std::string trimmed(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  return s.substr(begin, end - begin);
}

/// Net brace depth change of one line, ignoring braces inside strings.
int brace_delta(const std::string& line) {
  int delta = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++delta;
    if (c == '}') --delta;
  }
  return delta;
}

}  // namespace

bool is_json_artifact(const std::string& name, const std::string& text) {
  if (name.size() >= 5 && name.compare(name.size() - 5, 5, ".json") == 0)
    return true;
  const std::string body = trimmed(text);
  return !body.empty() && body.front() == '{';
}

std::string canonicalize_artifact(const std::string& name,
                                  const std::string& text) {
  if (!is_json_artifact(name, text)) return text;

  // Emitters in this tree write one key per line, so a line-oriented
  // scrub is exact for them — and safely conservative for anything
  // else: a line we cannot prove is wall-time survives and must match.
  static const std::regex timing_object(R"(^\s*"timing"\s*:\s*\{)");
  static const std::regex wall_time_key(
      R"re(^\s*"(?:[A-Za-z0-9_.]*(?:ns_per_iter|per_second|real_time|cpu_time|wall_ms|elapsed_ms|latency_ms|duration_s)[A-Za-z0-9_.]*|[A-Za-z0-9_.]+_(?:ms|us|ns))"\s*:)re");

  std::istringstream in(text);
  std::string out;
  std::string line;
  int skip_depth = 0;  // inside a "timing" object when > 0
  while (std::getline(in, line)) {
    if (skip_depth > 0) {
      skip_depth += brace_delta(line);
      continue;
    }
    if (std::regex_search(line, timing_object)) {
      skip_depth = brace_delta(line);
      if (skip_depth <= 0) skip_depth = 0;  // single-line {...} object
      continue;
    }
    if (std::regex_search(line, wall_time_key)) continue;
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace epp::lint
