#include "hydra/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace epp::hydra {
namespace {

HistoricalModel sample_model(bool with_mix) {
  HistoricalModel model(0.1413);
  Relationship1 f;
  f.c_lower = 0.00567;
  f.lambda_lower = 0.00123;
  f.lambda_upper = 0.00533;
  f.c_upper = -6.91;
  f.max_throughput_rps = 186.0;
  f.gradient_m = 0.1413;
  model.add_calibrated("AppServF", f);
  Relationship1 vf = f;
  vf.c_lower = 0.0039;
  vf.lambda_lower = 0.00067;
  vf.lambda_upper = 0.00308;
  vf.max_throughput_rps = 320.0;
  model.add_calibrated("AppServVF", vf);
  if (with_mix) model.calibrate_mix({0.0, 25.0}, {186.0, 155.0});
  return model;
}

TEST(HydraSerialize, RoundTripPreservesPredictions) {
  const HistoricalModel original = sample_model(true);
  const HistoricalModel loaded = model_from_text(to_text(original));
  EXPECT_DOUBLE_EQ(loaded.gradient_m(), original.gradient_m());
  ASSERT_EQ(loaded.servers().size(), 2u);
  for (const std::string& server : original.servers()) {
    for (double n : {200.0, 900.0, 1600.0, 3000.0}) {
      EXPECT_DOUBLE_EQ(loaded.predict_metric(server, n),
                       original.predict_metric(server, n))
          << server << " n=" << n;
      EXPECT_DOUBLE_EQ(loaded.predict_throughput(server, n),
                       original.predict_throughput(server, n));
    }
    EXPECT_DOUBLE_EQ(loaded.predict_max_throughput(server, 25.0),
                     original.predict_max_throughput(server, 25.0));
  }
}

TEST(HydraSerialize, RoundTripWithoutMix) {
  const HistoricalModel loaded = model_from_text(to_text(sample_model(false)));
  EXPECT_FALSE(loaded.has_mix_calibration());
}

TEST(HydraSerialize, TextIsStableAcrossRoundTrips) {
  const std::string once = to_text(sample_model(true));
  EXPECT_EQ(to_text(model_from_text(once)), once);
}

TEST(HydraSerialize, RejectsMalformedInput) {
  EXPECT_THROW(model_from_text(""), std::invalid_argument);
  EXPECT_THROW(model_from_text("not-a-header\n"), std::invalid_argument);
  EXPECT_THROW(model_from_text("hydra-model v1\n"), std::invalid_argument);
  EXPECT_THROW(model_from_text("hydra-model v1\ngradient -1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      model_from_text("hydra-model v1\ngradient 0.14\nserver F 1 2\n"),
      std::invalid_argument);
  EXPECT_THROW(
      model_from_text("hydra-model v1\ngradient 0.14\nbogus record\n"),
      std::invalid_argument);
}

TEST(HydraSerialize, CommentsAndBlankLinesTolerated) {
  std::string text = to_text(sample_model(false));
  text += "\n# trailing comment\n\n";
  EXPECT_NO_THROW((void)model_from_text(text));
}

TEST(HydraSerialize, EstablishedProvenanceSurvivesRoundTrip) {
  HistoricalModel original = sample_model(false);
  // Rebuild with provenance: F and VF established (in that order), plus a
  // derived server registered from the cross-server fit.
  HistoricalModel with_provenance(original.gradient_m());
  with_provenance.restore_established("AppServF", original.server("AppServF"));
  with_provenance.restore_established("AppServVF",
                                      original.server("AppServVF"));
  with_provenance.add_new_server("AppServS", 86.0);

  const HistoricalModel loaded = model_from_text(to_text(with_provenance));
  ASSERT_EQ(loaded.established_servers(),
            with_provenance.established_servers());
  EXPECT_TRUE(loaded.is_established("AppServF"));
  EXPECT_TRUE(loaded.is_established("AppServVF"));
  EXPECT_FALSE(loaded.is_established("AppServS"));
  // The relationship-2 fit is recomputed from restored parameters, so a
  // post-load new-server derivation matches the pre-save one exactly.
  const Relationship1 before =
      with_provenance.cross_server_fit().predict_for(
          120.0, with_provenance.gradient_m());
  const Relationship1 after =
      loaded.cross_server_fit().predict_for(120.0, loaded.gradient_m());
  EXPECT_DOUBLE_EQ(after.c_lower, before.c_lower);
  EXPECT_DOUBLE_EQ(after.lambda_lower, before.lambda_lower);
  EXPECT_DOUBLE_EQ(after.lambda_upper, before.lambda_upper);
  EXPECT_DOUBLE_EQ(after.c_upper, before.c_upper);
}

TEST(HydraSerialize, LegacyV1FilesStillLoadAsDerived) {
  const std::string v1 =
      "hydra-model v1\n"
      "gradient 0.1413\n"
      "server AppServF 0.00567 0.00123 0.00533 -6.91 186 0.1413 0.66 1.1\n";
  const HistoricalModel loaded = model_from_text(v1);
  ASSERT_TRUE(loaded.has_server("AppServF"));
  EXPECT_FALSE(loaded.is_established("AppServF"));
  EXPECT_TRUE(loaded.established_servers().empty());
}

TEST(HydraSerialize, RejectsBadProvenanceToken) {
  EXPECT_THROW(
      model_from_text("hydra-model v2\ngradient 0.14\n"
                      "server F bogus 1 2 3 4 5 6 7 8\n"),
      std::invalid_argument);
}

TEST(HydraSerialize, MixRelationshipRestored) {
  const HistoricalModel loaded = model_from_text(to_text(sample_model(true)));
  ASSERT_TRUE(loaded.has_mix_calibration());
  EXPECT_NEAR(loaded.mix_relationship().established(25.0), 155.0, 1e-9);
}

}  // namespace
}  // namespace epp::hydra
