// Corpus: EPP-HOT-001 — heap allocation on the hot path.
#include "util/annotations.hpp"

namespace lint_corpus {

EPP_HOT_BEGIN(corpus_alloc);

inline int* fresh_int() {
  return new int(42);
}

EPP_HOT_END(corpus_alloc);

}  // namespace lint_corpus
