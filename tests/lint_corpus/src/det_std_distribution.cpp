// Corpus: EPP-DET-002 — std <random> machinery where util::Rng samplers
// are required. The engine line and the distribution line are separate
// findings: either alone already makes results non-portable.
#include <cstdint>
#include <random>

namespace lint_corpus {

inline double portable_looking_sample(std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  return unit(engine);
}

}  // namespace lint_corpus
