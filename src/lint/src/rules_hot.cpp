#include <cstddef>
#include <regex>
#include <string>
#include <vector>

#include "lint/src/rules.hpp"

namespace epp::lint::srcrules {
namespace {

using srcmodel::FileModel;

struct HotRegion {
  int begin_line = 0;
  int end_line = 0;
  std::string label;
};

/// Pair EPP_HOT_BEGIN/END markers per file. Regions may not nest and
/// labels must match; violations are EPP-HOT-005 errors and the broken
/// region is not scanned (garbage bounds would mislocate findings).
std::vector<HotRegion> pair_markers(const FileModel& file,
                                    Diagnostics& out) {
  std::vector<HotRegion> regions;
  const srcmodel::HotMarker* open = nullptr;
  for (const srcmodel::HotMarker& marker : file.hot_markers) {
    if (marker.begin) {
      if (open != nullptr) {
        out.error("EPP-HOT-005",
                  {file.path, marker.line},
                  "EPP_HOT_BEGIN(" + marker.label +
                      ") inside the still-open region '" + open->label +
                      "' — hot regions may not nest",
                  "close the outer region first");
        open = &marker;  // resync on the inner begin
        continue;
      }
      open = &marker;
      continue;
    }
    if (open == nullptr) {
      out.error("EPP-HOT-005",
                {file.path, marker.line},
                "EPP_HOT_END(" + marker.label + ") without a matching "
                                                "EPP_HOT_BEGIN",
                "add the begin marker, or delete this stray end");
      continue;
    }
    if (open->label != marker.label) {
      out.error("EPP-HOT-005",
                {file.path, marker.line},
                "EPP_HOT_END(" + marker.label + ") closes region '" +
                    open->label + "' — labels must match exactly",
                "make the begin/end labels agree");
      open = nullptr;
      continue;
    }
    regions.push_back(HotRegion{open->line, marker.line, marker.label});
    open = nullptr;
  }
  if (open != nullptr) {
    out.error("EPP-HOT-005",
              {file.path, open->line},
              "EPP_HOT_BEGIN(" + open->label +
                  ") is never closed in this file",
              "add EPP_HOT_END(" + open->label + ") after the hot code");
  }
  return regions;
}

}  // namespace

void check_hot_regions(const std::vector<FileModel>& files,
                       Diagnostics& out) {
  // Explicit-allocation tokens only: containers may reuse capacity, so
  // resize()/push_back() are judged by benchmarks, not by this rule.
  static const std::regex alloc(
      R"(\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bmake_unique\b|\bmake_shared\b|\bstrdup\s*\()");
  static const std::regex function_type(R"(std::function\b)");
  static const std::regex io(
      R"(\bprintf\s*\(|\bfprintf\s*\(|\bsprintf\s*\(|\bsnprintf\s*\(|\bputs\s*\(|\bfopen\s*\(|\bfwrite\s*\(|\bfread\s*\(|\bfflush\s*\(|std::cout\b|std::cerr\b|std::clog\b|\bofstream\b|\bifstream\b|\bfstream\b)");

  for (const FileModel& file : files) {
    const std::vector<HotRegion> regions = pair_markers(file, out);
    for (const HotRegion& region : regions) {
      for (int line = region.begin_line + 1; line < region.end_line; ++line) {
        const std::string& tokens =
            file.tokens[static_cast<std::size_t>(line - 1)];
        if (std::regex_search(tokens, alloc)) {
          out.warning("EPP-HOT-001",
                      {file.path, line},
                      "heap allocation inside hot region '" + region.label +
                          "' — the allocator's lock and cache misses land "
                          "on the per-event path",
                      "preallocate outside the region (slab, pool, or "
                      "reused buffer)");
        }
        if (std::regex_search(tokens, function_type)) {
          out.warning("EPP-HOT-002",
                      {file.path, line},
                      "std::function inside hot region '" + region.label +
                          "' — capturing constructions beyond the "
                          "small-buffer limit heap-allocate per call",
                      "take a template parameter or a raw function "
                      "pointer + context instead");
        }
        if (std::regex_search(tokens, io)) {
          out.warning("EPP-HOT-004",
                      {file.path, line},
                      "console/file I/O inside hot region '" + region.label +
                          "' — a single syscall dwarfs the event budget",
                      "buffer the data and flush outside the region");
        }
      }
      for (const srcmodel::Acquisition& acquisition : file.acquisitions) {
        if (acquisition.line <= region.begin_line ||
            acquisition.line >= region.end_line)
          continue;
        out.warning("EPP-HOT-003",
                    {file.path, acquisition.line},
                    "lock acquisition of '" + acquisition.mutex_name +
                        "' inside hot region '" + region.label +
                        "' — contention here serializes the hot path",
                    "restructure so the region runs lock-free (snapshot "
                    "before, publish after)");
      }
    }
  }
}

}  // namespace epp::lint::srcrules
