#include "calib/predictor_set.hpp"

namespace epp::calib {

PredictorSet make_predictors(const CalibrationBundle& bundle,
                             const svc::BatchOptions& batch_options) {
  PredictorSet set;
  set.historical = std::make_unique<core::HistoricalPredictor>(
      bundle.mean_model, bundle.p90_model);
  set.lqn = std::make_unique<core::LqnPredictor>(bundle.lqn);
  set.hybrid = std::make_unique<core::HybridPredictor>(bundle.lqn);
  for (const ServerRecord& record : bundle.servers) {
    set.lqn->register_server(record.arch);
    set.hybrid->register_server(record.arch);
  }
  set.batch = std::make_unique<svc::BatchPredictor>(
      set.historical.get(), set.lqn.get(), set.hybrid.get(), batch_options);
  return set;
}

}  // namespace epp::calib
