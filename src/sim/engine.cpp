#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/annotations.hpp"

namespace epp::sim {
namespace {

constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
// Grow the calendar when pending events exceed kGrowFactor per bucket;
// shrink (on year boundaries) when they fall below 1/kGrowFactor.
constexpr std::size_t kGrowFactor = 4;

constexpr double kInfinity = std::numeric_limits<double>::infinity();

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Engine::Engine() : buckets_(kMinBuckets) {}

Engine::~Engine() {
  // Destroy any Callback payloads still alive in pending records.
  for (std::size_t chunk = 0; chunk < chunks_.size(); ++chunk) {
    for (std::size_t i = 0; i < kChunkSize; ++i) {
      Record& rec = chunks_[chunk][i];
      if (rec.has_callback) {
        reinterpret_cast<Callback*>(rec.payload)->~Callback();
        rec.has_callback = false;
      }
    }
  }
}

std::uint32_t Engine::allocate_slot() {
  if (free_slots_.empty()) {
    if (chunks_.size() >= (std::size_t{1} << (32 - kChunkShift)))
      throw std::length_error("Engine: event slab exhausted");
    chunks_.push_back(std::make_unique<Record[]>(kChunkSize));
    const auto base =
        static_cast<std::uint32_t>((chunks_.size() - 1) << kChunkShift);
    free_slots_.reserve(free_slots_.size() + kChunkSize);
    // Push in reverse so slots are first handed out in ascending order.
    for (std::size_t i = kChunkSize; i-- > 0;)
      free_slots_.push_back(base + static_cast<std::uint32_t>(i));
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void Engine::free_slot(std::uint32_t slot) noexcept {
  Record& rec = record(slot);
  if (rec.has_callback) {
    reinterpret_cast<Callback*>(rec.payload)->~Callback();
    rec.has_callback = false;
  }
  ++rec.gen;  // invalidates outstanding handles and stale queue entries
  free_slots_.push_back(slot);
}

Engine::Handle Engine::schedule_at(double time, Callback fn) {
  return schedule_impl(time, nullptr, nullptr, 0, &fn);
}

Engine::Handle Engine::schedule_after(double delay, Callback fn) {
  if (!(delay >= 0.0))
    throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_impl(now_ + delay, nullptr, nullptr, 0, &fn);
}

Engine::Handle Engine::schedule_raw_at(double time, RawFn fn, void* ctx,
                                       std::uint64_t arg) {
  return schedule_impl(time, fn, ctx, arg, nullptr);
}

Engine::Handle Engine::schedule_raw_after(double delay, RawFn fn, void* ctx,
                                          std::uint64_t arg) {
  if (!(delay >= 0.0))
    throw std::invalid_argument("Engine::schedule_after: negative delay");
  return schedule_impl(now_ + delay, fn, ctx, arg, nullptr);
}

Engine::Handle Engine::schedule_impl(double time, RawFn fn, void* ctx,
                                     std::uint64_t arg, Callback* callback) {
  // !(time >= now_) also rejects NaN; infinities would park forever in
  // the overflow ladder and break the year-jump logic, so refuse them.
  if (!(time >= now_) || !std::isfinite(time))
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  const std::uint32_t slot = allocate_slot();
  Record& rec = record(slot);
  rec.time = time;
  rec.fn = fn;
  rec.ctx = ctx;
  rec.arg = arg;
  if (callback) {
    new (rec.payload) Callback(std::move(*callback));
    rec.has_callback = true;
  }
  const QEntry entry{time, next_seq_++, slot, rec.gen};
  ++live_;
  insert(entry);
  return Handle{slot, rec.gen};
}

void Engine::cancel(Handle handle) noexcept {
  if (!handle) return;
  Record& rec = record(handle.slot);
  if (rec.gen != handle.gen) return;  // already fired / canceled / reused
  --live_;
  free_slot(handle.slot);  // the queue entry goes stale; skipped lazily
}

std::size_t Engine::bucket_index(double time) const noexcept {
  if (time <= year_start_) return 0;
  const double idx = (time - year_start_) / bucket_width_;
  const auto n = buckets_.size();
  const auto i = static_cast<std::size_t>(idx);
  return i >= n ? n - 1 : i;
}

void Engine::insert(const QEntry& entry) {
  if (live_ > buckets_.size() * kGrowFactor && buckets_.size() < kMaxBuckets) {
    rebuild(next_pow2(live_ / 2));
    // `entry` is not in the structure yet; rebuild only moved the others.
  }
  if (entry.time >= year_end()) {
    overflow_.push_back(entry);
    return;
  }
  const std::size_t idx = bucket_index(entry.time);
  if (idx <= cur_) {
    // The event lands in (or before) the bucket being drained: keep the
    // heap property so it still pops in global (time, seq) order.
    buckets_[cur_].push_back(entry);
    std::push_heap(buckets_[cur_].begin(), buckets_[cur_].end(), EntryAfter{});
  } else {
    buckets_[idx].push_back(entry);  // unsorted until the calendar arrives
  }
}

std::vector<Engine::QEntry> Engine::drain_live_entries() {
  std::vector<QEntry> live;
  live.reserve(live_);
  for (auto& bucket : buckets_) {
    for (const QEntry& e : bucket)
      if (record(e.slot).gen == e.gen) live.push_back(e);
    bucket.clear();
  }
  for (const QEntry& e : overflow_)
    if (record(e.slot).gen == e.gen) live.push_back(e);
  overflow_.clear();
  return live;
}

void Engine::rebuild(std::size_t num_buckets) {
  num_buckets = std::clamp(num_buckets, kMinBuckets, kMaxBuckets);
  std::vector<QEntry> live = drain_live_entries();
  buckets_.assign(num_buckets, {});
  cur_ = 0;
  double min_t = kInfinity, max_t = -kInfinity;
  for (const QEntry& e : live) {
    min_t = std::min(min_t, e.time);
    max_t = std::max(max_t, e.time);
  }
  // Size buckets so the live population spreads to ~1 event per bucket;
  // everything past the year boundary falls into the overflow ladder.
  year_start_ = live.empty() ? now_ : std::min(now_, min_t);
  const double span = max_t - year_start_;
  bucket_width_ = span > 0.0 && !live.empty()
                      ? span / static_cast<double>(live.size())
                      : 1.0;
  for (const QEntry& e : live) insert(e);
  std::make_heap(buckets_[cur_].begin(), buckets_[cur_].end(), EntryAfter{});
}

void Engine::start_new_year() {
  // Every bucket is empty, so all live events sit in the overflow
  // ladder. Jump the calendar straight to the earliest of them (idle
  // years cost nothing) and redistribute.
  std::vector<QEntry> live;
  live.reserve(overflow_.size());
  double min_t = kInfinity;
  for (const QEntry& e : overflow_)
    if (record(e.slot).gen == e.gen) {
      live.push_back(e);
      min_t = std::min(min_t, e.time);
    }
  overflow_.clear();
  cur_ = 0;
  year_start_ = min_t;
  if (live.size() < buckets_.size() / kGrowFactor &&
      buckets_.size() > kMinBuckets) {
    // Shrink on year boundaries only, so steady-state pops stay cheap.
    overflow_ = std::move(live);
    rebuild(next_pow2(std::max<std::size_t>(1, overflow_.size())));
    return;
  }
  for (const QEntry& e : live) insert(e);
  std::make_heap(buckets_[cur_].begin(), buckets_[cur_].end(), EntryAfter{});
}

void Engine::advance_bucket() {
  ++cur_;
  while (cur_ < buckets_.size() && buckets_[cur_].empty()) ++cur_;
  if (cur_ < buckets_.size()) {
    std::make_heap(buckets_[cur_].begin(), buckets_[cur_].end(), EntryAfter{});
    return;
  }
  start_new_year();
}

EPP_HOT_BEGIN(sim_event_loop);

double Engine::peek_live_time() {
  if (live_ == 0) {
    // Nothing can fire again: drop any stale entries wholesale.
    for (auto& bucket : buckets_) bucket.clear();
    overflow_.clear();
    cur_ = 0;
    return kInfinity;
  }
  for (;;) {
    auto& heap = buckets_[cur_];
    while (!heap.empty()) {
      const QEntry& top = heap.front();
      if (record(top.slot).gen == top.gen) return top.time;
      std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
      heap.pop_back();  // stale (canceled) entry: slot already reclaimed
    }
    advance_bucket();
  }
}

bool Engine::step() {
  if (peek_live_time() == kInfinity) return false;
  auto& heap = buckets_[cur_];
  std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
  const QEntry top = heap.back();
  heap.pop_back();
  Record& rec = record(top.slot);
  now_ = rec.time;
  ++processed_;
  --live_;
  if (rec.has_callback) {
    // Move the callable out so captured state releases promptly and the
    // slot can be reused by events the callback itself schedules.
    Callback fn = std::move(*reinterpret_cast<Callback*>(rec.payload));
    free_slot(top.slot);
    fn();
  } else {
    const RawFn fn = rec.fn;
    void* ctx = rec.ctx;
    const std::uint64_t arg = rec.arg;
    free_slot(top.slot);
    fn(ctx, arg);
  }
  return true;
}

void Engine::run_until(double end_time) {
  while (peek_live_time() <= end_time) step();
  if (end_time > now_) now_ = end_time;
}

void Engine::run_all() {
  while (step()) {
  }
}

EPP_HOT_END(sim_event_loop);

}  // namespace epp::sim
