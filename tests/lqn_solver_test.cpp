#include "lqn/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trade_model.hpp"

namespace epp::lqn {
namespace {

core::TradeCalibration test_calibration() {
  core::TradeCalibration cal;
  cal.browse = {0.005376, 0.00083, 0.00040, 1.14};
  cal.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return cal;
}

SolveResult solve_typical(double clients, SolverOptions options = {}) {
  const auto model = core::build_trade_lqn(test_calibration(), core::arch_f(),
                                           {clients, 0.0, 7.0});
  return LayeredSolver(options).solve(model);
}

TEST(LayeredSolver, LightLoadResponseNearServiceTime) {
  const SolveResult r = solve_typical(10);
  // At 10 clients there is essentially no contention: R ~= app demand +
  // 1.14 * (db cpu + disk).
  const double base = 0.005376 + 1.14 * (0.00083 + 0.00040);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.response_time_s("browse_clients"), base, 0.35 * base);
  EXPECT_NEAR(r.throughput_rps("browse_clients"), 10.0 / 7.0, 0.05);
}

TEST(LayeredSolver, LittlesLawHoldsAcrossLoads) {
  for (double n : {100.0, 800.0, 1500.0, 2600.0}) {
    const SolveResult r = solve_typical(n);
    const auto& c = r.cls("browse_clients");
    EXPECT_NEAR(c.throughput_rps * (7.0 + c.response_time_s), n, 1e-3 * n)
        << n;
  }
}

TEST(LayeredSolver, SaturationThroughputMatchesBottleneckBound) {
  const SolveResult r = solve_typical(3000);
  EXPECT_NEAR(r.throughput_rps("browse_clients"), 1.0 / 0.005376, 4.0);
  EXPECT_GT(r.processor_utilization.at("app_cpu"), 0.97);
}

TEST(LayeredSolver, MaxThroughputBound) {
  const auto model = core::build_trade_lqn(test_calibration(), core::arch_f(),
                                           {1000.0, 0.0, 7.0});
  const double bound = LayeredSolver().max_throughput_bound_rps(model);
  EXPECT_NEAR(bound, 186.0, 2.0);
}

TEST(LayeredSolver, FasterServerRespondsFasterAndScalesFurther) {
  const auto cal = test_calibration();
  const auto slow = core::build_trade_lqn(cal, core::arch_s(), {1000, 0, 7.0});
  const auto fast = core::build_trade_lqn(cal, core::arch_vf(), {1000, 0, 7.0});
  LayeredSolver solver;
  const SolveResult rs = solver.solve(slow);
  const SolveResult rf = solver.solve(fast);
  EXPECT_GT(rs.response_time_s("browse_clients"),
            rf.response_time_s("browse_clients"));
  EXPECT_NEAR(solver.max_throughput_bound_rps(slow), 86.0, 2.0);
  EXPECT_NEAR(solver.max_throughput_bound_rps(fast), 320.0, 4.0);
}

TEST(LayeredSolver, MixedWorkloadBuySlower) {
  const auto model = core::build_trade_lqn(test_calibration(), core::arch_f(),
                                           {750.0, 250.0, 7.0});
  const SolveResult r = LayeredSolver().solve(model);
  EXPECT_GT(r.response_time_s("buy_clients"),
            r.response_time_s("browse_clients"));
  EXPECT_GT(r.total_throughput_rps(), 0.0);
  EXPECT_GT(r.mean_response_time_s(), 0.0);
}

TEST(LayeredSolver, MixedWorkloadLowersMaxThroughput) {
  const auto cal = test_calibration();
  LayeredSolver solver;
  const auto pure = core::build_trade_lqn(cal, core::arch_f(), {1000, 0, 7.0});
  const auto mixed = core::build_trade_lqn(cal, core::arch_f(), {750, 250, 7.0});
  EXPECT_LT(solver.max_throughput_bound_rps(mixed),
            solver.max_throughput_bound_rps(pure));
}

TEST(LayeredSolver, ResponseTimeMonotoneInPopulation) {
  double prev = 0.0;
  for (double n : {200.0, 600.0, 1000.0, 1400.0, 1800.0, 2200.0}) {
    const double rt = solve_typical(n).response_time_s("browse_clients");
    EXPECT_GE(rt, prev - 1e-6) << n;
    prev = rt;
  }
}

TEST(LayeredSolver, TaskContentionToggleKeepsMeansClose) {
  // In the case-study regime thread pools never bind, so disabling the
  // layered surrogates must not change predictions much.
  SolverOptions with;
  SolverOptions without;
  without.model_task_contention = false;
  const double r_with = solve_typical(1200, with).response_time_s("browse_clients");
  const double r_without =
      solve_typical(1200, without).response_time_s("browse_clients");
  EXPECT_NEAR(r_with, r_without, 0.25 * r_without + 1e-4);
}

TEST(LayeredSolver, TinyThreadPoolCapsThroughput) {
  // Shrink the app server to 1 thread: the pool (holding time ~ service
  // incl. db round trip) becomes the bottleneck, not the CPU.
  auto cal = test_calibration();
  core::ServerArch arch = core::arch_f();
  arch.app_concurrency = 1;
  const auto model = core::build_trade_lqn(cal, arch, {2000.0, 0.0, 7.0});
  LayeredSolver solver;
  const SolveResult r = solver.solve(model);
  const double holding =
      0.005376 + 1.14 * (0.00083 + 0.00040);  // light-load service time
  EXPECT_LT(r.throughput_rps("browse_clients"), 1.05 / holding);
}

TEST(LayeredSolver, CoarseCriterionStillSolves) {
  SolverOptions options;
  options.convergence_tol_s = 0.020;  // the paper's setting
  const SolveResult r = solve_typical(1500, options);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.response_time_s("browse_clients"), 0.0);
}

TEST(LayeredSolver, ReportsSolveTimeAndIterations) {
  const SolveResult r = solve_typical(500);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GE(r.solve_time_s, 0.0);
  EXPECT_LT(r.solve_time_s, 5.0);
}

TEST(LayeredSolver, UnknownClassLookupThrows) {
  const SolveResult r = solve_typical(100);
  EXPECT_THROW(r.cls("nope"), std::out_of_range);
}

TEST(LayeredSolver, InvalidModelRejected) {
  Model empty;
  EXPECT_THROW(LayeredSolver().solve(empty), std::invalid_argument);
}

}  // namespace
}  // namespace epp::lqn
