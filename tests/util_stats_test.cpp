#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace epp::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(OnlineStats, MeanAndVarianceMatchClosedForm) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 25.0);
  EXPECT_NEAR(s.quantile(0.9), 37.0, 1e-12);
}

TEST(SampleSet, QuantileRejectsOutOfRange) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(SampleSet, EmpiricalCdf) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf(10.0), 1.0);
}

TEST(SampleSet, MeanVarianceAfterIncrementalAdds) {
  SampleSet s;
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 8.0);
  // quantile after further adds re-sorts correctly
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.0);
}

TEST(Accuracy, PerfectPredictionIs100) {
  EXPECT_DOUBLE_EQ(prediction_accuracy_percent(5.0, 5.0), 100.0);
}

TEST(Accuracy, TenPercentErrorIs90) {
  EXPECT_NEAR(prediction_accuracy_percent(110.0, 100.0), 90.0, 1e-12);
  EXPECT_NEAR(prediction_accuracy_percent(90.0, 100.0), 90.0, 1e-12);
}

TEST(Accuracy, ClampsAtZero) {
  EXPECT_DOUBLE_EQ(prediction_accuracy_percent(300.0, 100.0), 0.0);
}

TEST(Accuracy, VectorIsMeanOfPointAccuracies) {
  const std::vector<double> pred{110.0, 100.0};
  const std::vector<double> actual{100.0, 100.0};
  EXPECT_NEAR(prediction_accuracy_percent(pred, actual), 95.0, 1e-12);
}

TEST(Accuracy, VectorSizeMismatchThrows) {
  EXPECT_THROW(prediction_accuracy_percent(std::vector<double>{1.0},
                                           std::vector<double>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace epp::util
