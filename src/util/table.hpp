// Plain-text table rendering for the bench harness.
//
// Every bench binary regenerates one of the paper's tables or figures; the
// output format is a fixed-width ASCII table (readable in a terminal) plus
// an optional CSV dump so the series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace epp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header count.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render as an aligned ASCII table.
  std::string to_ascii() const;
  /// Render as CSV (no quoting; cells must not contain commas).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for mixed-type rows).
std::string fmt(double value, int precision = 3);

}  // namespace epp::util
