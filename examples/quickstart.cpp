// Quickstart: build the Trade case-study LQN in a few lines, solve it and
// print a scalability table — the smallest useful EPP program.
//
//   $ ./quickstart
//
// Shows: model building (core::build_trade_lqn), the layered solver, and
// per-class predictions.
#include <iostream>

#include "core/trade_model.hpp"
#include "lqn/solver.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;

  // Request-type processing times as calibrated on an established server
  // (the paper's table 2, in seconds at reference speed 1.0).
  core::TradeCalibration calibration;
  calibration.browse = {0.005376, 0.00083, 0.00040, 1.14};  // app, db, disk, calls
  calibration.buy = {0.010455, 0.00161, 0.00050, 2.0};

  // A new architecture is described by its benchmarked speed ratio.
  const core::ServerArch server = core::arch_f();  // 186 req/s reference box

  std::cout << "Scalability forecast for " << server.name
            << " (typical all-browse workload, 7 s think time)\n\n";
  util::Table table({"clients", "mean_rt_ms", "throughput_rps",
                     "app_cpu_util_pct"});
  const lqn::LayeredSolver solver;
  for (double clients : {100.0, 400.0, 800.0, 1200.0, 1600.0, 2000.0, 2600.0}) {
    const auto model =
        core::build_trade_lqn(calibration, server, {clients, 0.0, 7.0});
    const lqn::SolveResult result = solver.solve(model);
    table.add_row({util::fmt(clients, 0),
                   util::fmt(result.response_time_s("browse_clients") * 1e3, 1),
                   util::fmt(result.throughput_rps("browse_clients"), 1),
                   util::fmt(100.0 * result.processor_utilization.at("app_cpu"), 1)});
  }
  table.print(std::cout);
  std::cout << "\nThe knee sits where throughput reaches the bottleneck "
               "bound (~186 req/s); past it response time grows linearly "
               "with population.\n";
  return 0;
}
