#include "rm/tuning.hpp"

#include <stdexcept>

namespace epp::rm {
namespace {

void check(const TuningConfig& config) {
  if (config.planner == nullptr || config.truth == nullptr)
    throw std::invalid_argument("TuningConfig: missing predictors");
  if (config.pool.empty())
    throw std::invalid_argument("TuningConfig: empty server pool");
  if (config.loads.empty())
    throw std::invalid_argument("TuningConfig: no loads to sweep");
}

LoadPoint evaluate_one(const TuningConfig& config, double slack, double load) {
  ManagerOptions manager_options;
  manager_options.slack = slack;
  manager_options.think_time_s = config.think_time_s;
  const ResourceManager manager(*config.planner, manager_options);
  const auto classes = standard_classes(load);
  const Allocation allocation = manager.allocate(classes, config.pool);
  RuntimeOptions runtime = config.runtime;
  runtime.think_time_s = config.think_time_s;
  const RuntimeOutcome outcome =
      evaluate_runtime(allocation, classes, config.pool, *config.truth, runtime);
  return {load, outcome.sla_failure_pct, outcome.server_usage_pct};
}

}  // namespace

std::vector<LoadPoint> sweep_loads(const TuningConfig& config, double slack,
                                   util::ThreadPool* pool) {
  check(config);
  std::vector<LoadPoint> points(config.loads.size());
  auto body = [&](std::size_t i) {
    points[i] = evaluate_one(config, slack, config.loads[i]);
  };
  if (pool != nullptr) {
    pool->parallel_for(points.size(), body);
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) body(i);
  }
  return points;
}

namespace {

SlackPoint average_point(double slack, const std::vector<LoadPoint>& points) {
  SlackPoint out;
  out.slack = slack;
  // "average ... values across all loads prior to 100% server usage".
  double failures = 0.0, usage = 0.0;
  std::size_t counted = 0;
  for (const LoadPoint& p : points) {
    if (p.server_usage_pct >= 100.0) break;
    failures += p.sla_failure_pct;
    usage += p.server_usage_pct;
    ++counted;
  }
  if (counted > 0) {
    out.avg_sla_failure_pct = failures / static_cast<double>(counted);
    out.avg_server_usage_pct = usage / static_cast<double>(counted);
  }
  return out;
}

}  // namespace

std::vector<SlackPoint> sweep_slack(const TuningConfig& config,
                                    const std::vector<double>& slacks,
                                    double su_max_pct, util::ThreadPool* pool) {
  check(config);
  std::vector<SlackPoint> out(slacks.size());
  auto body = [&](std::size_t i) {
    // Loads are swept sequentially inside; slack levels fan out instead.
    out[i] = average_point(slacks[i], sweep_loads(config, slacks[i], nullptr));
    out[i].avg_usage_saving_pct = su_max_pct - out[i].avg_server_usage_pct;
  };
  if (pool != nullptr) {
    pool->parallel_for(out.size(), body);
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) body(i);
  }
  return out;
}

ZeroFailurePoint find_min_zero_failure_slack(const TuningConfig& config,
                                             const std::vector<double>& candidates,
                                             util::ThreadPool* pool) {
  check(config);
  for (double slack : candidates) {
    const auto points = sweep_loads(config, slack, pool);
    bool all_zero = true;
    for (const LoadPoint& p : points) {
      if (p.server_usage_pct >= 100.0) break;
      if (p.sla_failure_pct > 1e-9) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) {
      const SlackPoint avg = average_point(slack, points);
      return {slack, avg.avg_server_usage_pct};
    }
  }
  throw std::domain_error(
      "find_min_zero_failure_slack: no candidate achieved 0% failures");
}

}  // namespace epp::rm
