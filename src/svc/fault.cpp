#include "svc/fault.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/rng.hpp"

namespace epp::svc {
namespace {

/// FNV-1a — std::hash<string> is implementation-defined, and the fault
/// sequences should reproduce across standard libraries.
std::uint64_t fnv1a(const std::string& text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Uniform [0, 1) as a pure function of (seed, method, server, draw#).
double unit_draw(std::uint64_t seed, Method method, const std::string& server,
                 std::uint64_t draw, std::uint64_t stream_tag) noexcept {
  std::uint64_t state = seed;
  state ^= fnv1a(server);
  state ^= (static_cast<std::uint64_t>(method) + 1) * 0xBF58476D1CE4E5B9ULL;
  state ^= (draw + 1) * 0x94D049BB133111EBULL;
  state ^= stream_tag * 0x9E3779B97F4A7C15ULL;
  const std::uint64_t bits = util::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

}  // namespace

const MethodFaults& FaultConfig::for_method(Method method) const {
  switch (method) {
    case Method::kHistorical:
      return historical;
    case Method::kLqn:
      return lqn;
    case Method::kHybrid:
      return hybrid;
  }
  return historical;  // unreachable
}

MethodFaults& FaultConfig::for_method(Method method) {
  return const_cast<MethodFaults&>(
      static_cast<const FaultConfig&>(*this).for_method(method));
}

bool FaultConfig::any() const noexcept {
  for (const MethodFaults* faults : {&historical, &lqn, &hybrid})
    if (faults->fail_probability > 0.0 || faults->latency_s > 0.0) return true;
  return false;
}

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  for (const std::string& clause : split(spec, ';')) {
    const auto colon = clause.find(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("fault spec clause '" + clause +
                                  "' wants target:knob[,knob...]");
    const std::string target = clause.substr(0, colon);
    std::vector<MethodFaults*> targets;
    if (target == "*") {
      targets = {&config.historical, &config.lqn, &config.hybrid};
    } else {
      targets = {&config.for_method(method_from_name(target))};
    }
    const auto knobs = split(clause.substr(colon + 1), ',');
    if (knobs.empty())
      throw std::invalid_argument("fault spec clause '" + clause +
                                  "' has no knobs");
    for (const std::string& knob : knobs) {
      const auto eq = knob.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument("fault spec knob '" + knob +
                                    "' wants name=value");
      const std::string name = knob.substr(0, eq);
      double value = 0.0;
      try {
        value = std::stod(knob.substr(eq + 1));
      } catch (const std::exception&) {
        throw std::invalid_argument("fault spec knob '" + knob +
                                    "' has a non-numeric value");
      }
      if (!std::isfinite(value) || value < 0.0)
        throw std::invalid_argument("fault spec knob '" + knob +
                                    "' wants a finite non-negative value");
      if (name == "fail") {
        if (value > 1.0)
          throw std::invalid_argument("fault spec: fail probability '" + knob +
                                      "' exceeds 1");
        for (MethodFaults* faults : targets) faults->fail_probability = value;
      } else if (name == "latency-ms") {
        for (MethodFaults* faults : targets) faults->latency_s = value / 1e3;
      } else {
        throw std::invalid_argument("fault spec: unknown knob '" + name +
                                    "' (want fail or latency-ms)");
      }
    }
  }
  return config;
}

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

FaultInjector::Streams& FaultInjector::streams_for(
    Method method, const std::string& server) const {
  const std::pair<int, std::string> key{static_cast<int>(method), server};
  const std::lock_guard lock(mutex_);
  auto& slot = streams_[key];
  if (slot == nullptr) slot = std::make_unique<Streams>();
  return *slot;
}

bool FaultInjector::should_fail(Method method,
                                const std::string& server) const {
  const double p = config_.for_method(method).fail_probability;
  if (p <= 0.0 || !enabled()) return false;
  decisions_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t draw = streams_for(method, server)
                                 .fail_draws.fetch_add(
                                     1, std::memory_order_relaxed);
  const bool fail = unit_draw(seed_, method, server, draw, /*tag=*/1) < p;
  if (fail) failures_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

double FaultInjector::injected_latency_s(Method method,
                                         const std::string& server) const {
  const double mean = config_.for_method(method).latency_s;
  if (mean <= 0.0 || !enabled()) return 0.0;
  const std::uint64_t draw = streams_for(method, server)
                                 .latency_draws.fetch_add(
                                     1, std::memory_order_relaxed);
  // Exponential around the configured mean (inverse CDF of the draw), so
  // deadline policies see a realistic tail, still deterministically.
  const double u = unit_draw(seed_, method, server, draw, /*tag=*/2);
  return -mean * std::log1p(-u);
}

}  // namespace epp::svc
