// Length-prefixed binary protocol for the prediction service.
//
// Wire format, little-endian throughout:
//
//   frame    := u32 payload_length, payload
//   payload  := u8 version (kProtocolVersion), u8 kind, body
//
// Request body (every kind uses the same fixed layout; control kinds
// simply leave the workload fields zero):
//
//   u64 request_id          echoed verbatim in the response
//   u8  method              0 historical, 1 lqn, 2 hybrid
//   f64 browse_clients, buy_clients, think_time_s
//   f64 deadline_ms         0 = server default deadline
//   f64 observed_rt_s       kObserve: client-measured RT fed to the
//                           drift detector; 0 elsewhere (v2)
//   u16 server_len, bytes   target server architecture name; for kReload
//                           this carries the candidate bundle path
//                           (empty = re-read the server's configured path)
//
// Response body:
//
//   u64 request_id
//   u8  status              0 ok, 1 typed error (code below)
//   u8  error_code          svc::ErrorCode value when status != 0
//   u8  served_by           method that produced the prediction
//   u8  flags               bit0 fallback, bit1 stale, bit2 cached
//   u8  health              serve::HealthState value (v2)
//   u32 retries
//   u64 bundle_version      registry version that served the request (v2)
//   f64 mean_rt_s, throughput_rps
//   f64 predictor_latency_s server-side wall time inside the predictor
//   u16 detail_len, bytes   error detail / stats text
//
// Doubles travel as the little-endian bytes of their IEEE-754 bit
// pattern (std::bit_cast), so encode/decode round-trips exactly.
// Malformed payloads throw FrameError; oversized frames are refused at
// the read boundary (kMaxFrameBytes) so a corrupt length prefix cannot
// make the server allocate gigabytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace epp::net {

struct FrameError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

/// Message kinds. Control kinds share the request layout.
enum class MessageKind : std::uint8_t {
  kPredict = 1,   // evaluate one prediction request
  kPing = 2,      // liveness probe; response is an ok frame with no data
  kStats = 3,     // server + resilience counters as text in `detail`
  kShutdown = 4,  // begin graceful drain; acked before the server stops
  kReload = 5,    // promote the bundle named in `server` (v2)
  kObserve = 6,   // report a measured RT for drift detection (v2)
};

struct RequestMessage {
  MessageKind kind = MessageKind::kPredict;
  std::uint64_t id = 0;
  std::uint8_t method = 0;
  double browse_clients = 0.0;
  double buy_clients = 0.0;
  double think_time_s = 7.0;
  double deadline_ms = 0.0;     // 0 = server default
  double observed_rt_s = 0.0;   // kObserve: measured RT for this workload
  std::string server;           // architecture name / kReload bundle path
};

/// Response flag bits.
inline constexpr std::uint8_t kFlagFallback = 1;
inline constexpr std::uint8_t kFlagStale = 2;
inline constexpr std::uint8_t kFlagCached = 4;

struct ResponseMessage {
  std::uint64_t id = 0;
  std::uint8_t status = 0;      // 0 ok, 1 typed error
  std::uint8_t error_code = 0;  // svc::ErrorCode value when status != 0
  std::uint8_t served_by = 0;
  std::uint8_t flags = 0;
  std::uint8_t health = 0;      // serve::HealthState of the server
  std::uint32_t retries = 0;
  std::uint64_t bundle_version = 0;  // registry version that answered
  double mean_rt_s = 0.0;
  double throughput_rps = 0.0;
  double predictor_latency_s = 0.0;
  std::string detail;

  bool ok() const noexcept { return status == 0; }
};

std::vector<std::uint8_t> encode_request(const RequestMessage& message);
std::vector<std::uint8_t> encode_response(const ResponseMessage& message);

/// Decode a payload (the bytes after the length prefix). Throws
/// FrameError on version/kind/size mismatches.
RequestMessage decode_request(const std::vector<std::uint8_t>& payload);
ResponseMessage decode_response(const std::vector<std::uint8_t>& payload);

/// Write one frame (length prefix + payload). Returns false when the
/// peer has gone away.
bool write_frame(Socket& socket, const std::vector<std::uint8_t>& payload);

/// The exact bytes write_frame would put on the wire (length prefix +
/// payload). The chaos shim uses this to send *part* of a frame before
/// resetting, or to dribble a frame in paced chunks.
std::vector<std::uint8_t> frame_wire(const std::vector<std::uint8_t>& payload);

/// Read one frame's payload. Returns false on clean EOF before a frame;
/// throws FrameError on an oversized length prefix and SocketError on
/// truncation mid-frame.
bool read_frame(Socket& socket, std::vector<std::uint8_t>& payload);

}  // namespace epp::net
