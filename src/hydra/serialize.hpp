// Persistence for calibrated historical models.
//
// The system model's first support service lets servers be recalibrated
// and the resulting model state saved ("to save modelling variables that
// change infrequently ... or variables that are hard to measure"). This
// serialises a HistoricalModel — gradient, per-server relationship-1
// parameters and the relationship-3 mix fit — to a line-oriented text
// format and back, so a resource manager can persist calibrations between
// runs instead of re-measuring.
//
// Format v2 records established-vs-derived provenance per server:
// established servers are written in calibration order and restored via
// restore_established, so the relationship-2 cross-server fit recomputed
// on load is bit-identical to the fit before saving. Legacy v1 files
// (which lost provenance and registered everything via add_calibrated)
// still load, with every server treated as derived.
#pragma once

#include <iosfwd>
#include <string>

#include "hydra/model.hpp"

namespace epp::hydra {

/// Serialise to text (format v2). Stable across round trips.
std::string to_text(const HistoricalModel& model);

/// Parse a model produced by to_text (v2) or a legacy v1 file. Throws
/// std::invalid_argument with a line-numbered message on malformed input.
HistoricalModel model_from_text(const std::string& text);

}  // namespace epp::hydra
