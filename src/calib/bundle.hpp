// The calibration bundle: every fitted artifact the paper's support
// services produce, owned by one struct that can be produced from the
// simulated testbed once, persisted to a line-oriented `.epp` text file,
// and loaded in milliseconds everywhere a predictor is needed.
//
// Calibration is the expensive half of every method (sections 3-6 and the
// 8.4/8.5 asymmetry: minutes of measurement vs microseconds of
// prediction), yet the repo used to re-derive it from scratch in five
// places. This library is now the only calibration implementation; the
// bench harness, the examples and the CLI tools all consume bundles.
//
// Contents: the server catalog with measured max throughputs and
// established/new provenance, the shared clients->throughput gradient m,
// the layered-queuing per-request-type parameters (table 2), the fitted
// historical models (mean and direct-p90), the relationship-3 mix
// calibration, and the named seeds the runs drew from. Predictors built
// from a loaded bundle return bit-identical predictions to freshly
// calibrated ones — serialisation uses 17 significant digits, which
// round-trips every double exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "calib/catalog.hpp"
#include "calib/seeds.hpp"
#include "core/trade_model.hpp"
#include "hydra/model.hpp"
#include "lint/diagnostic.hpp"
#include "util/thread_pool.hpp"

namespace epp::calib {

/// One measured relationship-3 input: max throughput at a buy percentage
/// on the established reference server.
struct MixPoint {
  double buy_pct = 0.0;
  double max_throughput_rps = 0.0;
};

struct CalibrationBundle {
  // Seeds the pipeline ran with (provenance; see seeds.hpp).
  std::uint64_t lqn_seed = kLqnCalibrationSeed;
  std::uint64_t mix_seed = kMixBenchmarkSeed;
  std::uint64_t sweep_seed = kSweepSeed;

  /// Catalog entries with measured max throughputs, established first.
  std::vector<ServerRecord> servers;

  /// The shared clients->throughput gradient (the paper's m = 0.14).
  double gradient_m = 0.0;

  /// Layered-queuing per-request-type parameters (table 2).
  core::TradeCalibration lqn;

  /// Measured relationship-3 inputs; empty when the mix benchmark was
  /// skipped (the fitted relationship itself lives in mean_model).
  std::vector<MixPoint> mix_points;

  // Fitted historical models. The {1.0} placeholder gradient is
  // overwritten by calibrate()/bundle_from_text before anyone reads it.
  hydra::HistoricalModel mean_model{1.0};
  hydra::HistoricalModel p90_model{1.0};

  bool has_mix() const noexcept { return !mix_points.empty(); }

  /// Bundle entry by name; throws std::invalid_argument when absent.
  const ServerRecord& server(const std::string& name) const;
  /// Measured max throughput by name.
  double max_throughput(const std::string& name) const;
};

struct CalibrationOptions {
  /// Run the mixed-workload benchmark that feeds relationship 3 (one extra
  /// simulator run on the reference server at mix_buy_fraction buy users).
  bool measure_mix = true;
  double mix_buy_fraction = 0.25;
  std::uint64_t lqn_seed = kLqnCalibrationSeed;
  std::uint64_t mix_seed = kMixBenchmarkSeed;
  std::uint64_t sweep_seed = kSweepSeed;
  /// Fan simulator runs out on this pool (sequential when null).
  util::ThreadPool* pool = nullptr;
  /// Independent replications per saturation benchmark, averaged via
  /// sim::run_replications (1 = single run, the historical behaviour).
  std::size_t replications = 1;
  /// Forwarded to TestbedConfig::fluid_threshold: populations at or above
  /// this count answer from the fluid fast path (0 = always exact).
  std::size_t fluid_threshold = 0;
};

/// The calibration pipeline (support services 1-3): benchmark every
/// catalog server's max throughput, calibrate the LQN parameters, fit the
/// gradient and the per-server historical relationships (mean and p90),
/// and optionally the workload-mix relationship.
CalibrationBundle calibrate(const CalibrationOptions& options = {});

/// Serialise to the line-oriented `.epp` artifact text. Stable across
/// round trips.
std::string to_text(const CalibrationBundle& bundle);

/// Facts about an artifact's *source text* that the parsed bundle struct
/// cannot carry (record presence and line numbers) — the lint rules in
/// src/lint/rules_bundle.cpp locate their findings with these.
struct BundleParseInfo {
  bool have_seeds = false;
  int seeds_line = 0;
  int gradient_line = 0;
  int mean_model_line = 0;  // header line of the embedded mean block
  int p90_model_line = 0;   // header line of the embedded p90 block
  std::map<std::string, int> server_lines;  // catalog record line by name
  // Per-server fit lines *inside* the embedded model blocks, plus the
  // mix-relationship line — the EPP-SEM curve rules point here.
  std::map<std::string, int> mean_server_lines;
  std::map<std::string, int> p90_server_lines;
  int mean_mix_line = 0;
};

/// Parse `.epp` artifact text, appending every structural finding (the
/// EPP-BND-001..006 rules: bad header, malformed records, duplicate
/// records/sections, missing required records, truncated embedded
/// blocks, gradient/model disagreement) to `diagnostics`, located in
/// `file`. Malformed records are skipped, so one bad line yields one
/// finding instead of hiding everything after it. Returns the (possibly
/// partial) bundle; trust it only when no error was added. This is the
/// single source of truth for the format — bundle_from_text and
/// tools/epp_lint both run it.
CalibrationBundle parse_bundle_text(const std::string& text,
                                    const std::string& file,
                                    lint::Diagnostics& diagnostics,
                                    BundleParseInfo* info = nullptr);

/// Parse a bundle produced by to_text. Throws std::invalid_argument with
/// the first parse_bundle_text error (line-numbered message) on
/// malformed, truncated or duplicate-record input.
CalibrationBundle bundle_from_text(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_bundle(const std::string& path, const CalibrationBundle& bundle);
CalibrationBundle load_bundle(const std::string& path);

/// The `--bundle FILE` / `--save-bundle FILE` flags shared by the
/// examples and tools: load the artifact when given (warm start, zero
/// simulator work), calibrate otherwise, and persist when asked.
struct ArtifactCli {
  std::string load_path;  // --bundle
  std::string save_path;  // --save-bundle
};

/// Parse exactly the artifact flags from argv; throws std::invalid_argument
/// on anything else (callers with richer CLIs parse their own flags and
/// fill ArtifactCli directly).
ArtifactCli parse_artifact_flags(int argc, char** argv);

/// Load (load_path non-empty) or calibrate, then save (save_path
/// non-empty). The one construction path every consumer goes through.
CalibrationBundle acquire_bundle(const ArtifactCli& cli,
                                 const CalibrationOptions& options = {});

}  // namespace epp::calib
