#include "hydra/serialize.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace epp::hydra {

namespace {

void write_server(std::ostream& os, const std::string& name,
                  const char* provenance, const Relationship1& rel) {
  os << "server " << name << ' ' << provenance << ' ' << rel.c_lower << ' '
     << rel.lambda_lower << ' ' << rel.lambda_upper << ' ' << rel.c_upper
     << ' ' << rel.max_throughput_rps << ' ' << rel.gradient_m << ' '
     << rel.transition_lo << ' ' << rel.transition_hi << '\n';
}

}  // namespace

std::string to_text(const HistoricalModel& model) {
  std::ostringstream os;
  os.precision(17);
  os << "hydra-model v2\n";
  os << "gradient " << model.gradient_m() << '\n';
  // Established servers first, in calibration order: relationship 2 is
  // fitted over them in this order, so preserving it keeps the recomputed
  // fit bit-identical on load.
  for (const std::string& name : model.established_servers())
    write_server(os, name, "established", model.server(name));
  for (const std::string& name : model.servers())
    if (!model.is_established(name))
      write_server(os, name, "derived", model.server(name));
  if (model.has_mix_calibration()) {
    const Relationship3& mix = model.mix_relationship();
    os << "mix " << mix.max_tput_vs_buy_pct.slope << ' '
       << mix.max_tput_vs_buy_pct.intercept << '\n';
  }
  return os.str();
}

HistoricalModel model_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) -> void {
    throw std::invalid_argument("hydra model parse error, line " +
                                std::to_string(line_no) + ": " + message);
  };

  if (!std::getline(is, line)) {
    line_no = 1;
    fail("empty input");
  }
  ++line_no;
  int version = 0;
  if (line == "hydra-model v1") {
    version = 1;  // legacy: no provenance column, everything derived
  } else if (line == "hydra-model v2") {
    version = 2;
  } else {
    fail("bad header '" + line + "'");
  }

  double gradient = 0.0;
  bool have_gradient = false;
  struct ServerRecord {
    std::string name;
    bool established = false;
    Relationship1 rel;
  };
  std::vector<ServerRecord> servers;
  bool have_mix = false;
  Relationship3 mix;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "gradient") {
      if (!(ls >> gradient) || gradient <= 0.0) fail("bad gradient");
      have_gradient = true;
    } else if (kind == "server") {
      ServerRecord record;
      if (!(ls >> record.name)) fail("bad server record");
      if (version >= 2) {
        std::string provenance;
        if (!(ls >> provenance)) fail("bad server record");
        if (provenance == "established") {
          record.established = true;
        } else if (provenance != "derived") {
          fail("bad server provenance '" + provenance + "'");
        }
      }
      Relationship1& rel = record.rel;
      if (!(ls >> rel.c_lower >> rel.lambda_lower >> rel.lambda_upper >>
            rel.c_upper >> rel.max_throughput_rps >> rel.gradient_m >>
            rel.transition_lo >> rel.transition_hi))
        fail("bad server record");
      if (rel.max_throughput_rps <= 0.0 || rel.gradient_m <= 0.0)
        fail("non-positive server parameters");
      servers.push_back(std::move(record));
    } else if (kind == "mix") {
      if (!(ls >> mix.max_tput_vs_buy_pct.slope >>
            mix.max_tput_vs_buy_pct.intercept))
        fail("bad mix record");
      have_mix = true;
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  if (!have_gradient) {
    ++line_no;
    fail("missing gradient record");
  }

  HistoricalModel model(gradient);
  for (const ServerRecord& record : servers) {
    if (record.established)
      model.restore_established(record.name, record.rel);
    else
      model.add_calibrated(record.name, record.rel);
  }
  if (have_mix) model.set_mix(mix);
  return model;
}

}  // namespace epp::hydra
