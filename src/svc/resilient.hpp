// Fault-tolerant prediction serving on top of the batch engine.
//
// The paper's resource manager treats predictors as infallible functions;
// in practice a serving layer sees miscalibrated models, diverging
// solvers, malformed workloads and transient evaluation failures. The
// ResilientPredictor wraps BatchPredictor with the standard reliability
// toolkit, tuned for deterministic testing:
//
//   * typed outcomes — every request returns Expected<ResilientResult>:
//     either a served prediction (annotated with who served it and how)
//     or a PredictionError with a machine-readable code. Nothing escapes
//     as an exception.
//   * deadlines — a per-request budget (plus an optional per-batch
//     budget) enforced cooperatively: the active token is installed as
//     the thread-local ambient token (util/cancellation.hpp) and polled
//     inside the MVA / layered-solver loops. Virtual latency charged by
//     the FaultInjector counts against the deadline without any sleeps.
//   * retries — transient failures (injected faults) retry with capped
//     exponential backoff and seeded jitter.
//   * fallback chain — lqn degrades to hybrid then historical (hybrid to
//     historical); results served by a fallback are flagged. As a last
//     resort a previously served result for the same quantized request
//     is replayed from the stale store, flagged `stale`.
//   * circuit breakers — per (method, server); N consecutive breaker-
//     worthy failures open the circuit, a cooldown later one half-open
//     probe is admitted and either closes or re-opens it.
//
// Fast-path contract: with no deadline, no batch budget and no latency
// injection the serving layer performs no clock reads and no allocation
// beyond the wrapped engine — see bench/resilience_overhead.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "core/predictor.hpp"
#include "svc/batch_predictor.hpp"
#include "util/annotations.hpp"
#include "util/cancellation.hpp"
#include "util/lock_rank.hpp"
#include "util/thread_pool.hpp"

namespace epp::svc {

/// Failure taxonomy for served predictions. Codes are contractual (the
/// sweep tool prints them, tests assert on them); see DESIGN.md.
enum class ErrorCode {
  kNotCalibrated,     // unknown server / method not supplied
  kSolverDiverged,    // analytic solver refused its clamped iterate
  kDeadlineExceeded,  // per-request deadline or batch budget exhausted
  kCircuitOpen,       // breaker rejected the call without evaluating
  kInvalidWorkload,   // workload failed boundary validation
  kTransientFailure,  // transient fault persisted through all retries
  kInternal,          // anything else (bug shield, never expected)
  kOverloaded,        // admission control shed the request (epp_serve)
};

std::string_view error_code_name(ErrorCode code);

struct PredictionError {
  ErrorCode code = ErrorCode::kInternal;
  Method method = Method::kHistorical;  // method the error is attributed to
  std::string server;
  std::string detail;

  std::string to_string() const;
};

/// Minimal expected-style result carrier: exactly one of a value or a
/// PredictionError. value()/error() on the wrong alternative throw
/// std::logic_error — misuse is a caller bug, not a served failure.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}                  // NOLINT
  Expected(PredictionError error) : state_(std::move(error)) {}    // NOLINT

  bool ok() const noexcept { return std::holds_alternative<T>(state_); }

  const T& value() const {
    if (!ok()) throw std::logic_error("Expected: value() on an error");
    return std::get<T>(state_);
  }
  const PredictionError& error() const {
    if (ok()) throw std::logic_error("Expected: error() on a value");
    return std::get<PredictionError>(state_);
  }

 private:
  std::variant<T, PredictionError> state_;
};

/// A served prediction plus its provenance: which method was asked,
/// which answered, and what degradation (fallback / stale) or effort
/// (retries, latency) it took.
struct ResilientResult {
  PredictionResult prediction;
  Method requested = Method::kHistorical;
  Method served_by = Method::kHistorical;
  bool fallback = false;  // served_by differs from requested
  bool stale = false;     // replayed from the stale store
  int retries = 0;        // transient-failure retries spent
  /// Wall time plus injected virtual latency. Only tracked when a
  /// deadline, batch budget or latency injection is armed; 0 otherwise
  /// (the fast path reads no clocks).
  double latency_s = 0.0;
};

using Outcome = Expected<ResilientResult>;
using CapacityOutcome = Expected<core::CapacityResult>;

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view breaker_state_name(BreakerState state);

struct ResilienceOptions {
  /// Per-request deadline in seconds; 0 disables (and removes all clock
  /// reads from the serving path).
  double deadline_s = 0.0;
  /// Retries for *transient* failures only (injected faults). Solver
  /// divergence and calibration gaps are deterministic and never retried.
  int max_retries = 2;
  double backoff_base_s = 0.0005;
  double backoff_cap_s = 0.010;
  /// Seed for backoff jitter (tools pass calib::kRetryJitterSeed).
  std::uint64_t jitter_seed = 0xB0FFC0DEULL;
  /// Consecutive breaker-worthy failures that open a (method, server)
  /// circuit; 0 disables breaking entirely.
  int breaker_failure_threshold = 5;
  /// Open-state dwell before one half-open probe is admitted. 0 admits
  /// the probe immediately (useful for deterministic tests).
  double breaker_cooldown_s = 1.0;
  /// Serve the last good result for the same quantized request when the
  /// whole chain fails (flagged stale). Entries are recorded when a
  /// request is freshly evaluated (cache replays already have one), so
  /// the all-cache-hit fast path pays no store.
  bool serve_stale = true;
  /// Entries the stale store may hold before evicting in insertion order
  /// (refreshed on overwrite, so it approximates LRU-by-write). One-shot
  /// sweeps never notice the bound; a long-running daemon needs it — the
  /// store is keyed by quantized request and would otherwise grow with
  /// every distinct workload ever served. 0 means unbounded.
  std::size_t stale_capacity = 4096;
  /// Degrade lqn -> hybrid -> historical when the requested method fails.
  bool fallback_enabled = true;
};

/// Aggregate counters since construction (or reset()).
struct ResilienceStats {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t errors = 0;           // outcomes returned as errors
  std::uint64_t retries = 0;
  std::uint64_t fallbacks = 0;        // served by a non-requested method
  std::uint64_t stale_serves = 0;
  std::uint64_t stale_evictions = 0;  // entries dropped by the capacity bound
  std::uint64_t deadline_hits = 0;
  std::uint64_t breaker_rejections = 0;  // calls refused while open
  std::uint64_t breaker_opens = 0;       // closed/half-open -> open edges
};

class ResilientPredictor {
 public:
  /// Non-owning: the engine (and its predictors) must outlive this.
  explicit ResilientPredictor(const BatchPredictor& engine,
                              ResilienceOptions options = {});

  /// Serve one request through validation, the breaker, the retry loop,
  /// the fallback chain and the stale store. Never throws on request
  /// failure. Thread-safe.
  Outcome predict(const PredictionRequest& request) const;

  /// Serve one request under a caller-supplied deadline that overrides
  /// options().deadline_s for this call only — the serving daemon maps
  /// per-request protocol deadlines through here onto the same
  /// cancellation machinery batch budgets use. deadline_s <= 0 falls back
  /// to the configured deadline.
  Outcome predict_with_deadline(const PredictionRequest& request,
                                double deadline_s) const;

  /// Serve every request (fanned out on `pool` when given). When
  /// batch_budget_s > 0 the whole batch shares that budget on top of the
  /// per-request deadline; requests that never start once it expires
  /// return kDeadlineExceeded. Results align with input order.
  std::vector<Outcome> predict_batch(
      const std::vector<PredictionRequest>& requests,
      util::ThreadPool* pool = nullptr, double batch_budget_s = 0.0) const;

  /// SLA capacity probe with breaker admission, deadline and typed
  /// errors; no fallback chain (capacity is a per-method question).
  CapacityOutcome max_clients_for_goal(Method method,
                                       const std::string& server,
                                       double goal_s,
                                       double buy_fraction = 0.0,
                                       double think_time_s = 7.0) const;

  /// Current stored state of a (method, server) breaker (kClosed when the
  /// pair has never failed).
  BreakerState breaker_state(Method method, const std::string& server) const;

  ResilienceStats stats() const;
  /// Entries currently held by the stale store (<= stale_capacity when
  /// the bound is armed). Takes the store lock; intended for tests and
  /// the serving daemon's stats endpoint, not hot paths.
  std::size_t stale_size() const;
  /// Drop breakers, stale entries and counters (not the engine's cache).
  void reset();

  const ResilienceOptions& options() const noexcept { return options_; }
  const BatchPredictor& engine() const noexcept { return engine_; }

 private:
  struct Breaker {
    std::atomic<int> consecutive_failures{0};
    std::atomic<int> state{0};  // BreakerState underlying value
    std::atomic<std::int64_t> opened_at_ns{0};
    std::atomic<bool> probe_in_flight{false};
  };
  struct StaleEntry {
    PredictionResult prediction;
    Method served_by = Method::kHistorical;
    /// Position in stale_order_ (for O(1) refresh and eviction).
    std::list<CacheKey>::iterator order;
  };

  /// Record a fresh result under the store's capacity bound; evicts the
  /// oldest entry (insertion order, refreshed on overwrite) when full.
  void stale_store(const CacheKey& key, const PredictionResult& prediction,
                   Method served_by) const;

  Outcome serve(const PredictionRequest& request,
                const util::CancellationToken* budget) const;

  /// Existing breaker for the pair, or nullptr. Healthy traffic never
  /// creates breakers (they materialize on first breaker-worthy failure,
  /// via breaker_obtain), so the no-failure fast path skips the map —
  /// and the lock — entirely behind one relaxed atomic load.
  Breaker* breaker_lookup(Method method, const std::string& server) const;
  Breaker& breaker_obtain(Method method, const std::string& server) const;
  /// Admission decision; sets *probe when the call is the half-open probe.
  bool breaker_admit(Breaker& breaker) const;
  void breaker_success(Breaker& breaker) const;
  void breaker_failure(Breaker& breaker) const;
  /// Release a half-open probe without a verdict (deadline, non-breaker
  /// error): the breaker stays half-open for the next caller.
  static void breaker_release(Breaker& breaker);

  double next_backoff_s(int attempt) const;

  const BatchPredictor& engine_;
  ResilienceOptions options_;

  mutable util::RankedSharedMutex breaker_mutex_{EPP_LOCK_RANK(60),
                                               "svc.resilient.breakers"};
  mutable std::map<std::pair<int, std::string>, std::unique_ptr<Breaker>>
      breakers_;
  mutable std::atomic<int> breakers_created_{0};

  mutable util::RankedSharedMutex stale_mutex_{EPP_LOCK_RANK(61),
                                             "svc.resilient.stale"};
  mutable std::unordered_map<CacheKey, StaleEntry, CacheKeyHash> stale_;
  /// Insertion order of stale_ keys, oldest first (eviction victims).
  mutable std::list<CacheKey> stale_order_;

  mutable std::atomic<std::uint64_t> jitter_counter_{0};

  struct Counters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> fallbacks{0};
    std::atomic<std::uint64_t> stale_serves{0};
    std::atomic<std::uint64_t> stale_evictions{0};
    std::atomic<std::uint64_t> deadline_hits{0};
    std::atomic<std::uint64_t> breaker_rejections{0};
    std::atomic<std::uint64_t> breaker_opens{0};
  };
  mutable Counters counters_;
};

}  // namespace epp::svc
