// Persistence for calibrated historical models.
//
// The system model's first support service lets servers be recalibrated
// and the resulting model state saved ("to save modelling variables that
// change infrequently ... or variables that are hard to measure"). This
// serialises a HistoricalModel — gradient, per-server relationship-1
// parameters and the relationship-3 mix fit — to a line-oriented text
// format and back, so a resource manager can persist calibrations between
// runs instead of re-measuring.
//
// Note: established-vs-derived provenance is not preserved; every loaded
// server is registered via add_calibrated, which is sufficient for
// prediction (relationship 2 can be refitted from fresh calibrations).
#pragma once

#include <iosfwd>
#include <string>

#include "hydra/model.hpp"

namespace epp::hydra {

/// Serialise to text. Stable across round trips.
std::string to_text(const HistoricalModel& model);

/// Parse a model produced by to_text. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
HistoricalModel model_from_text(const std::string& text);

}  // namespace epp::hydra
