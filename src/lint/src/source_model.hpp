// The per-translation-unit lock model behind epp_srclint.
//
// scan_file() reduces one C++ source file to the facts the EPP-CONC,
// EPP-HOT and EPP-DET rules consume. It is a deliberately lightweight textual
// scanner — no libclang, no preprocessor — built on three passes:
//
//   1. *stripping*: two views of the text are produced, both preserving
//      line structure — `code` (comments blanked, string literals kept,
//      used to read mutex labels out of declarations) and a pure token
//      view (comments AND literal contents blanked, used for every
//      other scan so quoted or commented-out code never matches);
//   2. *declaration harvest*: RankedMutex / RankedSharedMutex / std
//      mutex declarations with their EPP_LOCK_RANK ranks and labels,
//      and EPP_GUARDED_BY field bindings;
//   3. *scope walk*: a brace-depth walk recording guard scopes
//      (lock_guard / unique_lock / scoped_lock / shared_lock /
//      util::MutexLock / util::SharedMutexLock and statement-form bare
//      .lock()/.unlock()), which mutexes are held on every line, loop
//      blocks, and the call sites the rules care about (blocking calls,
//      cv waits with their argument counts, detach, CAS, hot markers).
//
// A fourth, determinism-oriented value-flow pass feeds the EPP-DET
// rules: util::Rng declarations (and whether a constructor init list
// seeds them), unordered-container declarations with their loop bodies,
// entropy sources (std::random_device, time(), clock ::now() reads)
// with the variables they taint, seed sinks the taint can flow into,
// and by-reference lambdas handed to the thread pool together with the
// floating-point accumulators declared outside them.
//
// The model is intra-procedural and name-based: it sees locks a
// function takes directly, not locks taken inside callees. That blind
// spot is exactly what the runtime lock-rank tracker
// (util/lock_rank.hpp) covers dynamically; the two share the
// EPP_LOCK_RANK declarations so they can never disagree about the
// intended order.
#pragma once

#include <string>
#include <vector>

namespace epp::lint::srcmodel {

struct MutexDecl {
  std::string file;
  int line = 0;
  std::string name;   // declared identifier, e.g. "mutex_"
  std::string label;  // runtime dotted name, e.g. "serve.registry"
  int rank = -1;      // EPP_LOCK_RANK value; -1 = none declared
  bool shared = false;
  bool ranked_type = false;  // util::RankedMutex / RankedSharedMutex
  bool std_type = false;     // std::mutex family
};

/// A field bound to a mutex with EPP_GUARDED_BY.
struct GuardedField {
  std::string file;
  int line = 0;
  std::string name;
  std::string mutex_name;  // normalized EPP_GUARDED_BY argument
};

/// One lock acquisition (guard construction or statement-form .lock()).
struct Acquisition {
  int line = 0;
  std::string mutex_name;         // normalized (last member component)
  std::vector<std::string> held;  // mutexes already held at this point
};

/// A call matching the blocking-call list while at least one lock is
/// held (lock-free blocking calls are not recorded).
struct BlockingCall {
  int line = 0;
  std::string token;  // e.g. "join", "sleep_for"
};

struct WaitCall {
  int line = 0;
  std::string token;  // "wait" / "wait_for" / "wait_until"
  int args = 0;       // top-level argument count
};

struct CasCall {
  int line = 0;
  bool in_loop = false;  // inside a loop block or a loop head nearby
};

struct DetachCall {
  int line = 0;
};

struct HotMarker {
  int line = 0;
  bool begin = false;
  std::string label;
};

// --- determinism value-flow facts (EPP-DET) --------------------------------

/// A util::Rng declaration. Default-seeded means no constructor
/// arguments appear anywhere in the TU — neither at the declaration nor
/// in a constructor init list (`: rng_(seed, stream)`), the pattern the
/// SoA client pools use.
struct RngDecl {
  int line = 0;
  std::string name;
  bool default_seeded = false;
};

/// An associative container declaration whose key choice matters for
/// determinism: unordered containers iterate in hash order, and pointer
/// keys order by allocation address in ordered containers too.
struct ContainerDecl {
  int line = 0;
  std::string name;
  bool unordered = false;
  bool pointer_key = false;
};

/// A range-for (or .begin() iterator loop) over a named container, with
/// the body extent so rules can judge what the loop does.
struct ContainerLoop {
  int line = 0;        // loop head
  int body_begin = 0;  // line of the opening brace
  int body_end = 0;    // line of the closing brace
  std::string container;  // normalized (last member component)
};

/// A read of a nondeterministic entropy source. When the value is
/// stored (`seed = time(nullptr)`), `variable` carries the tainted name
/// so seed sinks elsewhere in the TU can be matched against it.
struct EntropyUse {
  int line = 0;
  std::string token;     // "std::random_device", "time", "system_clock::now"...
  std::string variable;  // tainted variable; empty when used inline
};

/// A seed sink: a util::Rng construction (declaration or constructor
/// init list), a `.seed(...)` call, or `srand(...)`, with the raw
/// argument text for taint matching.
struct SeedSink {
  int line = 0;
  std::string args;
};

/// A floating-point variable declaration (double/float, including
/// std::atomic<double>) — candidate shared accumulator for EPP-DET-004.
struct FloatDecl {
  int line = 0;
  std::string name;
};

/// A by-reference-capturing lambda handed to the thread pool, either
/// inline at the call (`pool->parallel_for(n, [&](std::size_t i) {`) or
/// named (`auto body = [&](...) {` later passed to
/// submit/parallel_for/for_each_index). Body extent is recorded so
/// rules can look for mutations of outer state inside it.
struct PoolLambda {
  int line = 0;        // where the lambda is introduced
  int body_begin = 0;  // line of the opening brace
  int body_end = 0;    // line of the closing brace
  std::string name;    // named lambda variable; empty when inline
};

struct FileModel {
  std::string path;
  int line_count = 0;
  std::vector<MutexDecl> decls;
  std::vector<GuardedField> guarded;
  std::vector<Acquisition> acquisitions;
  std::vector<BlockingCall> blocking;
  std::vector<WaitCall> waits;
  std::vector<CasCall> cas;
  std::vector<DetachCall> detaches;
  std::vector<HotMarker> hot_markers;
  std::vector<RngDecl> rngs;
  std::vector<ContainerDecl> containers;
  std::vector<ContainerLoop> container_loops;
  std::vector<EntropyUse> entropy;
  std::vector<SeedSink> seed_sinks;
  std::vector<FloatDecl> floats;
  std::vector<PoolLambda> pool_lambdas;
  /// held_by_line[i] = normalized names of mutexes held at the end of
  /// line i+1 (plus any guard opened earlier on that line).
  std::vector<std::vector<std::string>> held_by_line;
  /// Pure token view, one entry per line (comments and literal contents
  /// blanked); rules run their token scans over this.
  std::vector<std::string> tokens;
};

/// Reduce `text` (the contents of `path`) to its lock model.
FileModel scan_file(const std::string& path, const std::string& text);

/// Strip a member expression to the identifier the declaration uses:
/// "&this->session.write_mutex" -> "write_mutex".
std::string normalize_mutex_name(std::string expr);

}  // namespace epp::lint::srcmodel
