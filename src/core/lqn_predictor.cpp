#include "core/lqn_predictor.hpp"

#include <stdexcept>
#include <string>

#include "core/errors.hpp"

namespace epp::core {

LqnPredictor::LqnPredictor(TradeCalibration calibration,
                           lqn::SolverOptions solver_options)
    : calibration_(calibration), solver_options_(solver_options) {}

void LqnPredictor::register_server(const ServerArch& server) {
  servers_[server.name] = server;
}

bool LqnPredictor::has_server(const std::string& name) const {
  return servers_.count(name) != 0;
}

const ServerArch& LqnPredictor::server(const std::string& name) const {
  const auto it = servers_.find(name);
  if (it == servers_.end())
    throw NotCalibratedError("LqnPredictor: unknown server '" + name + "'");
  return it->second;
}

lqn::SolveResult LqnPredictor::solve(const std::string& server_name,
                                     const WorkloadSpec& workload) const {
  const auto model =
      build_trade_lqn(calibration_, server(server_name), workload);
  lqn::SolveResult result = lqn::LayeredSolver(solver_options_).solve(model);
  // The solver always reports convergence; the predictor refuses to pass a
  // clamped last iterate off as a prediction unless explicitly allowed.
  if (!result.converged && solver_options_.require_convergence)
    throw SolverDivergedError(
        "LQN solve for '" + server_name + "' did not converge within " +
            std::to_string(result.iterations) + " layer iteration(s)",
        result.iterations, result.mean_response_time_s());
  return result;
}

double LqnPredictor::predict_mean_rt_s(const std::string& server_name,
                                       const WorkloadSpec& workload) const {
  return solve(server_name, workload).mean_response_time_s();
}

double LqnPredictor::predict_throughput_rps(const std::string& server_name,
                                            const WorkloadSpec& workload) const {
  return solve(server_name, workload).total_throughput_rps();
}

double LqnPredictor::predict_max_throughput_rps(const std::string& server_name,
                                                double buy_fraction) const {
  // Population magnitude does not affect the asymptotic bound, only the
  // class mix does; 1000 clients is an arbitrary reference scale.
  WorkloadSpec mix;
  mix.buy_clients = 1000.0 * buy_fraction;
  mix.browse_clients = 1000.0 - mix.buy_clients;
  const auto model = build_trade_lqn(calibration_, server(server_name), mix);
  return lqn::LayeredSolver(solver_options_).max_throughput_bound_rps(model);
}

hydra::DataPoint LqnPredictor::pseudo_point(const std::string& server_name,
                                            double clients,
                                            double buy_fraction,
                                            double think_time_s) const {
  WorkloadSpec workload;
  workload.buy_clients = clients * buy_fraction;
  workload.browse_clients = clients - workload.buy_clients;
  workload.think_time_s = think_time_s;
  hydra::DataPoint point;
  point.clients = clients;
  point.metric_s = predict_mean_rt_s(server_name, workload);
  point.samples = 0;  // analytic, not sampled
  return point;
}

}  // namespace epp::core
