// Algorithm 1: the prediction-enhanced resource-management algorithm.
//
//   1. sort the service classes in order of increasing response time goal
//   2-8. greedily allocate each class's clients to application servers,
//        selecting the server the performance model predicts can take the
//        most clients of the current class — except for the class's last
//        server, where the smallest sufficient server is chosen instead.
//
// The "slack" parameter multiplies each class's client count before
// allocation; it is the paper's tuning knob for compensating predictive
// inaccuracy and trading SLA failures against server usage (section 9).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "rm/types.hpp"
#include "svc/resilient.hpp"

namespace epp::rm {

struct ManagerOptions {
  double slack = 1.0;
  double think_time_s = 7.0;
  /// Granularity of the capacity bisection in clients.
  double capacity_resolution = 1.0;
};

class ResourceManager {
 public:
  /// The predictor is the (possibly inaccurate) model the manager plans
  /// with — the paper uses the hybrid model here.
  ResourceManager(const core::Predictor& predictor, ManagerOptions options);

  const ManagerOptions& options() const noexcept { return options_; }

  /// Run Algorithm 1 over the classes and servers.
  Allocation allocate(std::vector<ServiceClassSpec> classes,
                      const std::vector<PoolServer>& servers) const;

  /// Fault-tolerant Algorithm 1: capacity probes go through the resilient
  /// serving layer and come back as typed outcomes. A probe that fails —
  /// circuit open for the (method, server) pair, solver divergence,
  /// deadline — scores that server as zero additional capacity for the
  /// round (counted in Allocation::failed_probes) instead of aborting the
  /// whole allocation, so degraded servers are simply planned around.
  Allocation allocate(std::vector<ServiceClassSpec> classes,
                      const std::vector<PoolServer>& servers,
                      const svc::ResilientPredictor& resilient,
                      svc::Method method) const;

  /// Predicted additional clients of `cls` that server i could take on top
  /// of an existing allocation without the model predicting an SLA miss
  /// for any class on the server (capacity probe used by the algorithm).
  double additional_capacity(const PoolServer& server,
                             const std::map<std::string, double>& existing,
                             const std::vector<ServiceClassSpec>& all_classes,
                             const ServiceClassSpec& cls,
                             int& prediction_evaluations) const;

 private:
  /// Capacity probe: clients of `cls` the server can still take, charged
  /// against `allocation`'s evaluation/failure counters.
  using CapacityProbe = std::function<double(
      const PoolServer&, const std::map<std::string, double>&,
      const std::vector<ServiceClassSpec>&, const ServiceClassSpec&,
      Allocation&)>;

  Allocation run_allocation(std::vector<ServiceClassSpec> classes,
                            const std::vector<PoolServer>& servers,
                            const CapacityProbe& probe) const;

  const core::Predictor& predictor_;
  ManagerOptions options_;
};

}  // namespace epp::rm
