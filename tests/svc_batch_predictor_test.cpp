// Batch prediction engine over all three methods, calibrated without the
// simulator: the LQN predictor runs from the paper's table-2 constants,
// and the historical model is fitted from LQN-generated pseudo data
// (exactly the hybrid method's data source), keeping the fixture fast.
#include "svc/batch_predictor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "util/thread_pool.hpp"

namespace epp::svc {
namespace {

core::TradeCalibration test_calibration() {
  core::TradeCalibration cal;
  cal.browse = {0.005376, 0.00083, 0.00040, 1.14};
  cal.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return cal;
}

struct Predictors {
  static constexpr double kGradient = 0.14;
  core::LqnPredictor lqn{test_calibration()};
  core::HybridPredictor hybrid{test_calibration()};
  core::HistoricalPredictor historical{kGradient};

  Predictors() {
    for (const auto& arch :
         {core::arch_s(), core::arch_f(), core::arch_vf()}) {
      lqn.register_server(arch);
      hybrid.register_server(arch);
    }
    for (const char* name : {"AppServF", "AppServVF"}) {
      const double max_tput = lqn.predict_max_throughput_rps(name, 0.0);
      const double n_star = max_tput / kGradient;
      const std::vector<hydra::DataPoint> lower{
          lqn.pseudo_point(name, 0.25 * n_star),
          lqn.pseudo_point(name, 0.60 * n_star)};
      const std::vector<hydra::DataPoint> upper{
          lqn.pseudo_point(name, 1.25 * n_star),
          lqn.pseudo_point(name, 1.70 * n_star)};
      historical.calibrate_established(name, lower, upper, max_tput);
    }
    historical.register_new_server(
        "AppServS", lqn.predict_max_throughput_rps("AppServS", 0.0));
  }
};

Predictors& predictors() {
  static Predictors p;
  return p;
}

core::WorkloadSpec browse_load(double clients) {
  core::WorkloadSpec w;
  w.browse_clients = clients;
  return w;
}

std::unique_ptr<BatchPredictor> make_engine(BatchOptions options = {}) {
  Predictors& p = predictors();
  return std::make_unique<BatchPredictor>(&p.historical, &p.lqn, &p.hybrid,
                                          options);
}

TEST(BatchPredictor, CachedPredictionBitEqualsFreshForAllMethods) {
  const auto engine = make_engine();
  for (Method method : {Method::kHistorical, Method::kLqn, Method::kHybrid}) {
    const PredictionRequest request{method, "AppServF", browse_load(900.0)};
    const PredictionResult cold = engine->predict(request);
    const PredictionResult warm = engine->predict(request);
    EXPECT_FALSE(cold.cached) << method_name(method);
    EXPECT_TRUE(warm.cached) << method_name(method);
    // Bit-equality, not tolerance: the cache memoizes the exact value the
    // predictor computed at the quantized workload.
    EXPECT_EQ(warm.mean_rt_s, cold.mean_rt_s) << method_name(method);
    EXPECT_EQ(warm.throughput_rps, cold.throughput_rps) << method_name(method);
    const core::Predictor& direct = engine->predictor_for(method);
    const core::WorkloadSpec q = engine->quantized(request.workload);
    EXPECT_EQ(warm.mean_rt_s, direct.predict_mean_rt_s("AppServF", q));
    EXPECT_EQ(warm.throughput_rps,
              direct.predict_throughput_rps("AppServF", q));
  }
}

TEST(BatchPredictor, QuantizationSharesCacheEntries) {
  const auto engine = make_engine();
  const PredictionRequest a{Method::kHistorical, "AppServF",
                            browse_load(900.2)};
  const PredictionRequest b{Method::kHistorical, "AppServF",
                            browse_load(899.8)};
  const PredictionResult first = engine->predict(a);
  const PredictionResult second = engine->predict(b);  // same 900-client key
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.mean_rt_s, first.mean_rt_s);
  EXPECT_EQ(engine->cache_stats().entries, 1u);
}

TEST(BatchPredictor, ParallelBatchMatchesSerialExactly) {
  // A grid with deliberate duplicates, evaluated concurrently, must agree
  // bit-for-bit with a serial evaluation on a fresh engine.
  std::vector<PredictionRequest> grid;
  for (const char* server : {"AppServS", "AppServF", "AppServVF"})
    for (Method method :
         {Method::kHistorical, Method::kLqn, Method::kHybrid})
      for (int pass = 0; pass < 2; ++pass)
        for (double clients = 200.0; clients <= 1400.0; clients += 300.0)
          grid.push_back({method, server, browse_load(clients)});

  const auto serial_engine = make_engine();
  const auto serial = serial_engine->predict_batch(grid, nullptr);

  util::ThreadPool pool(4);
  const auto parallel_engine = make_engine();
  const auto parallel = parallel_engine->predict_batch(grid, &pool);

  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(parallel[i].mean_rt_s, serial[i].mean_rt_s) << i;
    EXPECT_EQ(parallel[i].throughput_rps, serial[i].throughput_rps) << i;
  }
  // Every request does exactly one cache lookup, and the duplicated half
  // of the grid is served from cache (serially: all second-pass requests).
  const CacheStats stats = parallel_engine->cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, grid.size());
  EXPECT_GT(stats.hits, 0u);
}

TEST(BatchPredictor, ConcurrentHitsAndMissesStayConsistent) {
  const auto engine = make_engine();
  util::ThreadPool pool(4);
  // Hammer a small working set from many threads; historical-only keeps
  // this fast, racing lookups against inserts on shared shards.
  std::vector<PredictionRequest> storm;
  for (int i = 0; i < 600; ++i)
    storm.push_back({Method::kHistorical, "AppServF",
                     browse_load(100.0 * (1 + i % 6))});
  const auto results = engine->predict_batch(storm, &pool);
  const PredictionResult reference =
      engine->predict({Method::kHistorical, "AppServF", browse_load(100.0)});
  EXPECT_TRUE(reference.cached);
  for (std::size_t i = 0; i < storm.size(); ++i) {
    if (i % 6 == 0) {
      EXPECT_EQ(results[i].mean_rt_s, reference.mean_rt_s) << i;
    }
  }
  const CacheStats stats = engine->cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, storm.size() + 1);
  EXPECT_EQ(stats.entries, 6u);
}

TEST(BatchPredictor, EvictionBoundedCacheStillAnswersCorrectly) {
  BatchOptions options;
  options.cache_capacity_per_shard = 2;
  options.cache_shards = 1;
  const auto engine = make_engine(options);
  for (double clients : {100.0, 200.0, 300.0, 400.0, 100.0}) {
    const auto r = engine->predict(
        {Method::kHistorical, "AppServF", browse_load(clients)});
    EXPECT_GT(r.mean_rt_s, 0.0);
  }
  const CacheStats stats = engine->cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, 2u);
}

TEST(BatchPredictor, MissingPredictorAndBadOptionsThrow) {
  Predictors& p = predictors();
  const BatchPredictor partial(&p.historical, nullptr, nullptr);
  EXPECT_THROW(
      (void)partial.predict({Method::kLqn, "AppServF", browse_load(100.0)}),
      std::invalid_argument);
  BatchOptions bad;
  bad.quantum_clients = 0.0;
  EXPECT_THROW(BatchPredictor(&p.historical, nullptr, nullptr, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace epp::svc
