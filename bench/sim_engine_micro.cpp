// Micro-benchmark: discrete-event testbed throughput (events/second) and
// per-experiment simulation cost — what one "measured data point" costs on
// this substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/trade/testbed.hpp"

namespace {

using namespace epp::sim;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    const long n = state.range(0);
    for (long i = 0; i < n; ++i)
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_PsResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    PsResource cpu(engine, 1.0);
    const long n = state.range(0);
    for (long i = 0; i < n; ++i)
      engine.schedule_at(0.001 * static_cast<double>(i), [&cpu] {
        cpu.add_job(0.01, [] {});
      });
    engine.run_all();
    benchmark::DoNotOptimize(cpu.active_jobs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PsResourceChurn)->Arg(1000)->Arg(20000);

void BM_TestbedMeasurement(benchmark::State& state) {
  // Cost of one measured data point at the given client count (short
  // window to keep the benchmark itself quick).
  for (auto _ : state) {
    trade::TestbedConfig config = trade::typical_workload(
        trade::app_serv_f(), static_cast<std::size_t>(state.range(0)), 42);
    config.warmup_s = 5.0;
    config.measure_s = 20.0;
    benchmark::DoNotOptimize(trade::run_testbed(config));
  }
}
BENCHMARK(BM_TestbedMeasurement)->Arg(200)->Arg(800)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
