#include "lint/interval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace epp::lint {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double down(double x) { return std::nextafter(x, -kInf); }
double up(double x) { return std::nextafter(x, kInf); }

/// One-ulp outward widening — applied after every arithmetic step so the
/// result stays an enclosure under round-to-nearest.
Interval widen(double lo, double hi) { return {down(lo), up(hi)}; }

}  // namespace

Interval point(double x) { return {x, x}; }

Interval span(double a, double b) {
  return {std::min(a, b), std::max(a, b)};
}

Interval add(const Interval& a, const Interval& b) {
  return widen(a.lo + b.lo, a.hi + b.hi);
}

Interval sub(const Interval& a, const Interval& b) {
  return widen(a.lo - b.hi, a.hi - b.lo);
}

Interval mul(const Interval& a, const Interval& b) {
  const double p1 = a.lo * b.lo, p2 = a.lo * b.hi;
  const double p3 = a.hi * b.lo, p4 = a.hi * b.hi;
  return widen(std::min(std::min(p1, p2), std::min(p3, p4)),
               std::max(std::max(p1, p2), std::max(p3, p4)));
}

Interval hull(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval linear(double slope, double intercept, const Interval& x) {
  return add(mul(point(slope), x), point(intercept));
}

Interval scale_exp(double coeff, double rate, const Interval& x) {
  // exp is monotone increasing, so the image of rate*x maps endpoint to
  // endpoint; std::exp is faithfully rounded within 1 ulp on every
  // mainstream libm, which the outward widening absorbs.
  const Interval rx = mul(point(rate), x);
  const Interval e = widen(std::exp(rx.lo), std::exp(rx.hi));
  return mul(point(coeff), e);
}

Interval power(double coeff, double exponent, const Interval& x) {
  // x^e on x.lo > 0 is monotone (increasing for e >= 0, decreasing for
  // e < 0), so endpoint evaluation again encloses the image.
  const double a = std::pow(x.lo, exponent);
  const double b = std::pow(x.hi, exponent);
  const Interval p = widen(std::min(a, b), std::max(a, b));
  return mul(point(coeff), p);
}

namespace {

/// Shared state of one bisection run: the target bound, the witness slot
/// and a node budget that caps total work independently of depth (depth
/// alone would admit 2^40 nodes).
struct ProveContext {
  const Extension& ext;
  const Pointwise& pt;
  double bound;
  Witness* witness;
  int nodes_left;
};

bool refutes(ProveContext& ctx, double x) {
  const double value = ctx.pt(x);
  if (value >= ctx.bound) return false;
  if (ctx.witness != nullptr) {
    ctx.witness->x = x;
    ctx.witness->value = value;
  }
  return true;
}

Proof prove_range(ProveContext& ctx, double lo, double hi, int depth) {
  if (ctx.nodes_left-- <= 0) return Proof::kUnknown;
  if (ctx.ext({lo, hi}).lo >= ctx.bound) return Proof::kProven;
  const double mid = 0.5 * (lo + hi);
  if (refutes(ctx, lo) || refutes(ctx, mid) || refutes(ctx, hi))
    return Proof::kRefuted;
  if (depth <= 0 || !(lo < mid && mid < hi)) return Proof::kUnknown;
  const Proof left = prove_range(ctx, lo, mid, depth - 1);
  if (left == Proof::kRefuted) return Proof::kRefuted;
  const Proof right = prove_range(ctx, mid, hi, depth - 1);
  if (right == Proof::kRefuted) return Proof::kRefuted;
  if (left == Proof::kProven && right == Proof::kProven)
    return Proof::kProven;
  return Proof::kUnknown;
}

}  // namespace

Proof prove_at_least(const Extension& ext, const Pointwise& pt, double lo,
                     double hi, double bound, Witness* witness,
                     int max_depth) {
  if (hi < lo) return Proof::kProven;  // empty range: vacuously true
  ProveContext ctx{ext, pt, bound, witness, 4096};
  return prove_range(ctx, lo, hi, max_depth);
}

void prefer_integer_witness(const Pointwise& pt, double lo, double hi,
                            double bound, Witness* witness) {
  if (witness == nullptr) return;
  const double base = std::floor(witness->x);
  // Smallest candidate first, so the reported witness is the earliest
  // whole client count near the refutation point.
  for (double delta = -3.0; delta <= 3.0; delta += 1.0) {
    const double x = base + delta;
    if (x < lo || x > hi) continue;
    const double value = pt(x);
    if (value < bound) {
      witness->x = x;
      witness->value = value;
      return;
    }
  }
}

}  // namespace epp::lint
