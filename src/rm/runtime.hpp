// Runtime evaluation of an allocation against the *real* system behaviour
// (paper §9): servers reject clients when response times would come within
// a threshold of missing SLA goals, and runtime optimisations let the
// manager use any capacity the algorithm left spare on allocated servers.
//
// In the paper's experiments "the more accurate historical model is used
// to represent the real system response times" — the truth predictor here
// plays that role.
#pragma once

#include "core/predictor.hpp"
#include "rm/types.hpp"

namespace epp::rm {

struct RuntimeOptions {
  /// Servers reject clients once response times are within this fraction
  /// of the SLA goal (0 = reject exactly at the goal).
  double rejection_threshold = 0.0;
  double think_time_s = 7.0;
  /// Apply the spare-capacity runtime optimisation.
  bool runtime_optimization = true;
};

struct RuntimeOutcome {
  double total_clients = 0.0;
  double rejected_clients = 0.0;
  double sla_failure_pct = 0.0;   // % of clients rejected
  double server_usage_pct = 0.0;  // % of pool processing power allocated
  std::size_t servers_used = 0;
};

/// Evaluate the allocation: real clients (scaled counts divided by slack)
/// arrive at their servers; each server accepts up to its *true* capacity
/// for its strictest hosted goal; spare true capacity on used servers then
/// absorbs rejected/unallocated clients if the optimisation is enabled.
RuntimeOutcome evaluate_runtime(const Allocation& allocation,
                                const std::vector<ServiceClassSpec>& classes,
                                const std::vector<PoolServer>& servers,
                                const core::Predictor& truth,
                                const RuntimeOptions& options = {});

}  // namespace epp::rm
