// The prediction serving daemon core: a long-running concurrent TCP
// server answering the length-prefixed binary protocol in
// src/net/frame.hpp from whatever bundle version the BundleRegistry
// currently holds active.
//
// Thread model (all threads are owned and joined by this class):
//
//   * one accept thread — accepts connections and spawns one session
//     reader per connection (bounded by max_connections; excess
//     connections are closed immediately);
//   * one reader thread per live session — decodes frames and either
//     answers control frames inline (ping/stats/shutdown/reload) or
//     enqueues predict/observe work on the bounded dispatch queue;
//   * a fixed pool of worker threads — pop queued requests, evaluate
//     them through the *version-pinned* ResilientPredictor, and write
//     the response under the session's write lock, so concurrent
//     workers can interleave responses on one connection safely
//     (responses carry the request id; clients match, not order).
//
// Version pinning: the reader captures the registry's active
// ServingVersion (a shared_ptr) at admission and the work item carries
// it to the worker — a request admitted under version N is evaluated on
// version N even when a reload promotes N+1 mid-flight, and never mixes
// relationships across versions. The response reports the version that
// answered in `bundle_version`.
//
// Drift: kObserve frames carry a client-measured RT; the worker
// evaluates the same workload on the pinned version and feeds the
// (predicted, observed) pair to the DriftDetector. Every response's
// `health` byte carries the detector state; a version swap resets the
// detector (new bundle, clean slate).
//
// Chaos: when ServerOptions.chaos is armed, the server *applies* the
// decision-only net::ChaosPolicy verdicts — resets fresh connections at
// accept, delays first reads, and resets / truncates / dribbles
// response writes — so the loadgen harness can drive fault storms
// against the real wire paths.
//
// Admission control: the dispatch queue is bounded. When it is full the
// reader thread sheds the request *immediately* with a typed
// ErrorCode::kOverloaded response instead of queueing without bound —
// under overload clients see fast failures, not a latency collapse.
//
// Graceful shutdown (request_stop or a kShutdown frame): stop accepting,
// stop reading new frames, let the workers drain every request already
// admitted, flush those responses, then close the sessions. In-flight
// work is never dropped; only unread bytes are.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/drift.hpp"
#include "serve/registry.hpp"
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace epp::serve {

/// What a kReload frame (or SIGHUP) produced; `message` travels back to
/// the client in the response detail.
struct ReloadStatus {
  bool ok = false;
  std::string message;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read back with port()
  /// Fixed worker threads evaluating predictions.
  std::size_t workers = 4;
  /// Bounded dispatch queue; a full queue sheds with kOverloaded.
  std::size_t queue_capacity = 256;
  /// Live sessions beyond this are closed at accept.
  std::size_t max_connections = 256;
  /// Cap on the per-request deadline a client may ask for (seconds);
  /// larger requests are clamped. 0 disables per-request deadlines.
  double max_request_deadline_s = 10.0;
  /// Close a session whose client sends nothing for this long (seconds);
  /// counted in idle_closes. 0 lets a silent client pin its reader
  /// thread forever (the pre-timeout behaviour).
  double idle_timeout_s = 0.0;
  /// Drift detector configuration (applies to kObserve frames).
  DriftOptions drift;
  /// Answers kReload frames (and whatever the host wires SIGHUP to):
  /// typically loads the named bundle file and promotes it through the
  /// registry. Unset = reload unsupported, frames get a typed error.
  std::function<ReloadStatus(const std::string& path)> reload_handler;
  /// Non-owning wire-chaos policy; must outlive the server. nullptr
  /// serves cleanly.
  const net::ChaosPolicy* chaos = nullptr;
  /// Test hook: sleep this long in the worker before each evaluation,
  /// to provoke queue buildup/shedding deterministically. Never set in
  /// production paths.
  double worker_delay_s = 0.0;
};

/// Counters since start(). Queue depth is instantaneous.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t requests_enqueued = 0;
  std::uint64_t requests_served = 0;   // responses written by workers
  std::uint64_t requests_shed = 0;     // kOverloaded at admission
  std::uint64_t bad_frames = 0;        // undecodable payloads
  std::uint64_t responses_dropped = 0; // peer gone before the write
  std::uint64_t idle_closes = 0;       // sessions closed by idle timeout
  std::uint64_t reloads_ok = 0;        // kReload frames that promoted
  std::uint64_t reloads_failed = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  std::size_t open_sessions = 0;
};

class PredictionServer {
 public:
  /// Non-owning: the registry (and any chaos policy in the options)
  /// must outlive the server.
  PredictionServer(BundleRegistry& registry, ServerOptions options = {});
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Bind, listen and spawn the accept + worker threads. Throws
  /// net::SocketError when the address cannot be bound.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Begin graceful shutdown: stop accepting and reading, let workers
  /// drain the admitted queue. Safe from any thread, including session
  /// readers (a kShutdown frame calls this). Idempotent.
  void request_stop();

  /// True once request_stop() ran (or a kShutdown frame arrived).
  bool stopping() const noexcept {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Block until the drain completes and every thread is joined. Must
  /// not be called from a server-owned thread. Idempotent.
  void wait();

  /// request_stop() + wait().
  void stop();

  ServerStats stats() const;
  /// Drift state over the active version's observations.
  DriftSnapshot drift() const { return drift_.snapshot(); }
  BundleRegistry& registry() noexcept { return registry_; }

 private:
  struct Session {
    net::Socket socket;
    util::RankedMutex write_mutex{EPP_LOCK_RANK(95),
                                  "serve.server.session_write"};
    std::atomic<bool> dead{false};
  };
  using SessionPtr = std::shared_ptr<Session>;

  struct WorkItem {
    SessionPtr session;
    net::RequestMessage request;
    /// The registry version active at admission; the worker serves on
    /// exactly this version (hot-swap isolation).
    std::shared_ptr<const ServingVersion> pinned;
  };

  void accept_loop();
  void session_loop(SessionPtr session);
  void worker_loop();
  /// Serialize and send under the session write lock, applying any
  /// armed chaos verdict (reset / truncate / dribble); counts drops.
  void write_response(Session& session, const net::ResponseMessage& response);
  void handle_control(Session& session, const net::RequestMessage& request);
  net::ResponseMessage evaluate(const net::RequestMessage& request,
                                const ServingVersion& version);
  /// Reset the drift detector when the observed version changes.
  void drift_track_version(std::uint64_t version);
  /// Reap finished session-reader threads (called from the accept loop).
  void reap_sessions(bool all);

  BundleRegistry& registry_;
  ServerOptions options_;
  std::uint16_t port_ = 0;

  DriftDetector drift_;
  std::atomic<std::uint64_t> drift_version_{0};

  std::unique_ptr<net::Listener> listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  struct SessionHandle {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    std::weak_ptr<Session> session;  // for the shutdown read-side broadcast
  };
  util::RankedMutex sessions_mutex_{EPP_LOCK_RANK(20),
                                    "serve.server.sessions"};
  std::list<SessionHandle> session_threads_;
  std::atomic<std::size_t> open_sessions_{0};

  mutable util::RankedMutex queue_mutex_{EPP_LOCK_RANK(40),
                                         "serve.server.queue"};
  std::condition_variable_any queue_cv_;
  std::deque<WorkItem> queue_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  /// Set by wait() once every reader is joined (the queue can no longer
  /// grow); workers drain what is left, then exit.
  std::atomic<bool> workers_stop_{false};
  std::atomic<bool> joined_{false};
  util::RankedMutex lifecycle_mutex_{  // serializes wait()/stop() callers
      EPP_LOCK_RANK(10), "serve.server.lifecycle"};

  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_rejected{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> requests_enqueued{0};
    std::atomic<std::uint64_t> requests_served{0};
    std::atomic<std::uint64_t> requests_shed{0};
    std::atomic<std::uint64_t> bad_frames{0};
    std::atomic<std::uint64_t> responses_dropped{0};
    std::atomic<std::uint64_t> idle_closes{0};
    std::atomic<std::uint64_t> reloads_ok{0};
    std::atomic<std::uint64_t> reloads_failed{0};
    std::atomic<std::size_t> queue_peak{0};
  };
  mutable Counters counters_;
};

}  // namespace epp::serve
