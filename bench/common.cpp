#include "common.hpp"

#include "calib/predictor_set.hpp"

namespace epp::bench {

Setup::Setup(bool measure_mix) {
  calib::CalibrationOptions options;
  options.measure_mix = measure_mix;
  options.pool = &pool;
  bundle = calib::calibrate(options);

  calib::PredictorSet set = calib::make_predictors(bundle);
  historical = std::move(set.historical);
  lqn = std::move(set.lqn);
  hybrid = std::move(set.hybrid);

  max_s = bundle.max_throughput("AppServS");
  max_f = bundle.max_throughput("AppServF");
  max_vf = bundle.max_throughput("AppServVF");
  if (measure_mix) max_f_buy25 = bundle.mix_points.back().max_throughput_rps;
  gradient_m = bundle.gradient_m;
  calibration = bundle.lqn;
}

std::vector<core::MeasuredPoint> Setup::validation_sweep(
    const std::string& server, const std::vector<double>& fractions,
    double buy_client_fraction) {
  std::vector<double> clients;
  clients.reserve(fractions.size());
  for (double f : fractions) clients.push_back(f * n_star(server));
  core::SweepOptions options;
  options.buy_client_fraction = buy_client_fraction;
  options.seed = calib::kValidationSeed;
  return core::measure_sweep(calib::spec_for(server), clients, options, &pool);
}

}  // namespace epp::bench
