// DriftDetector: the streaming two-sided Page–Hinkley test over relative
// prediction error. The suite pins the statistic's arithmetic exactly —
// warmup gating, the absorbed-constant-offset property of the
// running-mean formulation, bounded detection delay after a step change
// in either direction, latching, and trip accounting across resets.
#include "serve/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>

namespace epp::serve {
namespace {

/// n agreeing observations (predicted == observed, zero relative error).
void warm_up(DriftDetector& detector, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) detector.observe(1.0, 1.0);
}

TEST(DriftDetector, UnusableSamplesAreIgnored) {
  DriftDetector detector;
  detector.observe(0.0, 1.0);    // no prediction: no error signal
  detector.observe(-1.0, 1.0);   // negative prediction
  detector.observe(1.0, 0.0);    // no measurement
  detector.observe(1.0, -2.0);   // negative measurement
  detector.observe(std::numeric_limits<double>::quiet_NaN(), 1.0);
  detector.observe(1.0, std::numeric_limits<double>::infinity());
  EXPECT_EQ(detector.snapshot().observations, 0u);
  EXPECT_EQ(detector.state(), HealthState::kWarming);
}

TEST(DriftDetector, WarmsUpThenReportsHealthy) {
  DriftOptions options;
  options.min_samples = 4;
  DriftDetector detector(options);
  for (std::size_t i = 0; i < 3; ++i) {
    detector.observe(1.0, 1.0);
    EXPECT_EQ(detector.state(), HealthState::kWarming) << i;
  }
  detector.observe(1.0, 1.0);
  EXPECT_EQ(detector.state(), HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(detector.snapshot().mean_error, 0.0);
}

TEST(DriftDetector, ConstantOffsetFromColdStartIsAbsorbedIntoTheMean) {
  // The running-mean Page–Hinkley formulation detects a *change* in the
  // error level, not the level itself: a model that has always been 30%
  // optimistic has a stable (if biased) error distribution, and the
  // detector calibrates to it instead of alarming. This is deliberate —
  // a constant bias is a calibration-quality question for the EPP-SEM
  // gate, not a drift event.
  DriftOptions options;
  options.min_samples = 8;
  DriftDetector detector(options);
  for (std::size_t i = 0; i < 500; ++i) detector.observe(1.0, 1.3);
  EXPECT_EQ(detector.state(), HealthState::kHealthy);
  EXPECT_NEAR(detector.snapshot().mean_error, 0.3, 1e-12);
  EXPECT_EQ(detector.snapshot().trips, 0u);
}

TEST(DriftDetector, StepChangeTripsAtThePinnedObservation) {
  // Defaults: delta = 0.05, lambda = 2.0, min_samples = 16. After 16
  // zero-error observations the mean is 0; a step to e = 1 (observed 2x
  // predicted) accumulates PH gap
  //   sum_{j=1..k} (16/(16+j) - 0.05)
  // which is 0.891 / 1.731 / 2.523 after k = 1 / 2 / 3 drifted
  // observations — so the alarm must fire on exactly the third.
  DriftDetector detector;
  warm_up(detector, 16);
  ASSERT_EQ(detector.state(), HealthState::kHealthy);

  detector.observe(1.0, 2.0);
  EXPECT_EQ(detector.state(), HealthState::kHealthy);
  detector.observe(1.0, 2.0);
  EXPECT_EQ(detector.state(), HealthState::kHealthy);
  detector.observe(1.0, 2.0);
  EXPECT_EQ(detector.state(), HealthState::kDrifting);
  EXPECT_EQ(detector.snapshot().trips, 1u);
  EXPECT_GT(detector.snapshot().gap_up, detector.options().lambda);
}

TEST(DriftDetector, PessimisticModelTripsTheDownSide) {
  // Observed *faster* than predicted (the model over-estimates): the
  // mirrored statistic must catch it. e = -0.7 against a zero-error
  // warmup accumulates gap_down approx 0.609 / 1.18 / 1.72 / 2.25, so
  // the alarm fires on the fourth drifted observation.
  DriftDetector detector;
  warm_up(detector, 16);
  std::size_t needed = 0;
  while (detector.state() != HealthState::kDrifting) {
    detector.observe(1.0, 0.3);
    ASSERT_LE(++needed, 6u) << "down-side drift never tripped";
  }
  EXPECT_EQ(needed, 4u);
  EXPECT_GT(detector.snapshot().gap_down, detector.options().lambda);
  EXPECT_LE(detector.snapshot().mean_error, 0.0);
}

TEST(DriftDetector, AlarmLatchesUntilReset) {
  DriftDetector detector;
  warm_up(detector, 16);
  for (std::size_t i = 0; i < 4; ++i) detector.observe(1.0, 2.0);
  ASSERT_EQ(detector.state(), HealthState::kDrifting);

  // The world healing does not clear the alarm: a drifted bundle stays
  // flagged until it is replaced (reset happens on version swap).
  for (std::size_t i = 0; i < 100; ++i) detector.observe(1.0, 1.0);
  EXPECT_EQ(detector.state(), HealthState::kDrifting);
  EXPECT_EQ(detector.snapshot().trips, 1u) << "latched alarm re-tripped";

  detector.reset();
  EXPECT_EQ(detector.state(), HealthState::kWarming);
  EXPECT_EQ(detector.snapshot().observations, 0u);
  // Trips survive the reset: they count alarms over the server's
  // lifetime, not the bundle's.
  EXPECT_EQ(detector.snapshot().trips, 1u);
}

TEST(DriftDetector, RetripsAfterResetAndCountsEveryAlarm) {
  DriftDetector detector;
  for (int round = 1; round <= 3; ++round) {
    warm_up(detector, 16);
    for (std::size_t i = 0; i < 4; ++i) detector.observe(1.0, 2.0);
    ASSERT_EQ(detector.state(), HealthState::kDrifting) << round;
    EXPECT_EQ(detector.snapshot().trips, static_cast<std::uint64_t>(round));
    detector.reset();
  }
}

TEST(DriftDetector, SnapshotTracksTheRunningStatistics) {
  DriftOptions options;
  options.min_samples = 2;
  DriftDetector detector(options);
  detector.observe(2.0, 2.2);  // e = 0.1
  detector.observe(2.0, 2.6);  // e = 0.3
  const DriftSnapshot snapshot = detector.snapshot();
  EXPECT_EQ(snapshot.observations, 2u);
  EXPECT_NEAR(snapshot.mean_error, 0.2, 1e-12);
  EXPECT_EQ(snapshot.state, HealthState::kHealthy);
}

TEST(DriftDetector, HealthStateNamesAreStable) {
  // The names appear in the stats frame and CI greps them.
  EXPECT_STREQ(health_state_name(HealthState::kWarming), "warming");
  EXPECT_STREQ(health_state_name(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(health_state_name(HealthState::kDrifting), "drifting");
}

}  // namespace
}  // namespace epp::serve
