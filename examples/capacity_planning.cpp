// Capacity planning: "which server architecture should host this SLA?"
//
// Calibrates all three prediction methods from the simulated testbed,
// then batch-evaluates the full (architecture x method x client-load)
// response-time grid concurrently through the svc::BatchPredictor — the
// paper's section 8.2 resource-management question asked the way a
// planner actually asks it, thousands of predictions per decision. SLA
// capacities for each goal are read off the predicted curves, and the
// second goal reuses the same grid, so it is answered entirely from the
// engine's memoization cache (section 8.5's latency point).
#include <iostream>
#include <vector>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "hydra/relationships.hpp"
#include "sim/trade/testbed.hpp"
#include "svc/batch_predictor.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

/// Largest client count on the predicted curve whose mean response time
/// stays within the goal, linearly interpolated between grid points.
double capacity_from_curve(const std::vector<double>& clients,
                           const std::vector<double>& rt_s, double goal_s) {
  double capacity = 0.0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (rt_s[i] <= goal_s) {
      capacity = clients[i];
      continue;
    }
    if (i > 0 && rt_s[i] > rt_s[i - 1]) {
      const double t = (goal_s - rt_s[i - 1]) / (rt_s[i] - rt_s[i - 1]);
      if (t > 0.0) capacity = clients[i - 1] + t * (clients[i] - clients[i - 1]);
    }
    break;
  }
  return capacity;
}

}  // namespace

int main() {
  using namespace epp;
  std::cout << "EPP capacity planner: max clients per architecture under an "
               "SLA goal\n\n";
  util::ThreadPool pool;

  // Benchmark the three candidate architectures' max throughputs (the
  // "application-specific benchmark on new server architectures").
  const double max_s = sim::trade::measure_max_throughput(sim::trade::app_serv_s());
  const double max_f = sim::trade::measure_max_throughput(sim::trade::app_serv_f());
  const double max_vf = sim::trade::measure_max_throughput(sim::trade::app_serv_vf());

  // Layered queuing calibration on the established AppServF.
  const core::TradeCalibration calibration =
      core::calibrate_lqn_from_testbed(7, &pool);
  core::LqnPredictor lqn(calibration);
  core::HybridPredictor hybrid(calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()}) {
    lqn.register_server(arch);
    hybrid.register_server(arch);
  }

  // Historical calibration on the two established boxes, S via rel. 2.
  const auto grad = core::measure_sweep(sim::trade::app_serv_f(), {300.0, 600.0},
                                        {}, &pool);
  const double m =
      hydra::fit_gradient({grad[0].clients, grad[1].clients},
                          {grad[0].throughput_rps, grad[1].throughput_rps});
  core::HistoricalPredictor historical(m);
  for (const auto& [name, spec, max] :
       {std::tuple{"AppServF", sim::trade::app_serv_f(), max_f},
        std::tuple{"AppServVF", sim::trade::app_serv_vf(), max_vf}}) {
    const double knee = max / m;
    const auto lower =
        core::measure_sweep(spec, {0.25 * knee, 0.6 * knee}, {}, &pool);
    const auto upper =
        core::measure_sweep(spec, {1.25 * knee, 1.7 * knee}, {}, &pool);
    historical.calibrate_established(name, core::to_data_points(lower),
                                     core::to_data_points(upper), max);
  }
  historical.register_new_server("AppServS", max_s);

  // One engine over the three calibrated methods; every sweep below goes
  // through its thread-pool fan-out and memoization cache.
  svc::BatchPredictor batch(&historical, &lqn, &hybrid);
  const svc::Method methods[] = {svc::Method::kHistorical, svc::Method::kLqn,
                                 svc::Method::kHybrid};
  const struct {
    const char* name;
    double max_tput;
  } servers[] = {{"AppServS", max_s}, {"AppServF", max_f},
                 {"AppServVF", max_vf}};

  for (const double goal_ms : {300.0, 600.0}) {
    // The full grid for this goal: per architecture, 48 loads spanning
    // 10%-240% of the max-throughput load, for all three methods.
    std::vector<svc::PredictionRequest> grid;
    std::vector<std::vector<double>> loads;
    for (const auto& server : servers) {
      const double knee = server.max_tput / m;
      std::vector<double> points;
      for (double f = 0.10; f <= 2.40; f += 0.05)
        points.push_back(f * knee);
      for (const svc::Method method : methods)
        for (const double clients : points) {
          core::WorkloadSpec w;
          w.browse_clients = clients;
          grid.push_back({method, server.name, w});
        }
      loads.push_back(std::move(points));
    }
    const util::Timer timer;
    const auto predicted = batch.predict_batch(grid, &pool);
    const double wall_ms = timer.elapsed_us() / 1e3;

    std::cout << "-- SLA goal: mean response time <= " << goal_ms
              << " ms  (" << grid.size() << " predictions, "
              << util::fmt(wall_ms, 1) << " ms) --\n";
    util::Table table({"architecture", "historical", "lqn", "hybrid"});
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < std::size(servers); ++s) {
      std::vector<std::string> row{servers[s].name};
      for (std::size_t mi = 0; mi < std::size(methods); ++mi) {
        std::vector<double> rt;
        for (std::size_t i = 0; i < loads[s].size(); ++i)
          rt.push_back(predicted[cursor + i].mean_rt_s);
        cursor += loads[s].size();
        row.push_back(
            util::fmt(capacity_from_curve(loads[s], rt, goal_ms / 1e3), 0));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  const svc::CacheStats stats = batch.cache_stats();
  std::cout << "cache: " << stats.hits << " hits / " << stats.misses
            << " misses (" << util::fmt(100.0 * stats.hit_ratio(), 1)
            << "% hit ratio) — the 600 ms sweep reused the 300 ms sweep's "
               "grid, so it cost no model evaluations at all.\n";
  return 0;
}
