#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace epp::net {
namespace {

[[noreturn]] void raise(const char* call) {
  // std::strerror shares a static buffer across threads; the category
  // message is the thread-safe spelling of the same text.
  throw SocketError(std::string(call) + ": " +
                    std::generic_category().message(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw SocketError("inet_pton: not an IPv4 address: '" + host + "'");
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = make_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise("socket");
  Socket socket(fd);
  // Frames are small and latency matters more than packing efficiency.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return socket;
    if (errno == EINTR) continue;
    raise("connect");
  }
}

bool Socket::send_all(const void* data, std::size_t n) {
  const char* cursor = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, cursor, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      raise("send");
    }
    cursor += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool Socket::recv_all(void* data, std::size_t n) {
  char* cursor = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t received = ::recv(fd_, cursor + got, n - got, 0);
    if (received < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw SocketTimeout("recv: receive timeout elapsed");
      if (errno == ECONNRESET && got == 0) return false;
      raise("recv");
    }
    if (received == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw SocketError("recv: peer closed mid-message");
    }
    got += static_cast<std::size_t>(received);
  }
  return true;
}

void Socket::set_recv_timeout(double seconds) noexcept {
  if (fd_ < 0) return;
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;  // 0/0 would disarm
  }
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Socket::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::reset() noexcept {
  if (fd_ < 0) return;
  // Linger with a zero timeout turns the eventual close() into an
  // abortive release: the kernel discards unsent data and fires an RST
  // at the peer. The shutdown unblocks any thread parked in recv; the
  // fd itself stays open until the owner destroys the Socket, so no
  // concurrent reader can race a reused fd number.
  linger hard{1, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(const std::string& host, std::uint16_t port, int backlog) {
  sockaddr_in addr = make_addr(host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    raise("bind");
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    raise("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    raise("getsockname");
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) raise("pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

std::optional<Socket> Listener::accept() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {fd_, POLLIN, 0};
    fds[1] = {wake_read_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      raise("poll");
    }
    if ((fds[1].revents & POLLIN) != 0) return std::nullopt;  // interrupted
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      raise("accept");
    }
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(client);
  }
}

void Listener::interrupt() noexcept {
  const char byte = 1;
  // One byte is enough: accept() never drains the pipe, so every future
  // accept() also sees it and returns immediately.
  [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
}

}  // namespace epp::net
