// Corpus: a real EPP-DET-003 silenced by an inline suppression — this
// file must produce no diagnostics when suppressions are honored, and
// one EPP-DET-003 under --no-suppress.
#include <iostream>
#include <string>
#include <unordered_set>

namespace lint_corpus {

inline void debug_dump(const std::unordered_set<std::string>& keys) {
  // epp-lint: ignore(EPP-DET-003) debug-only dump, order is cosmetic
  for (const auto& key : keys) {
    std::cout << key << "\n";
  }
}

}  // namespace lint_corpus
