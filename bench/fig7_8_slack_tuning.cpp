// Figures 7 & 8 — tuning the resource manager's slack parameter to
// balance SLA-failure cost against server-usage cost (paper section 9.1).
//
// The paper finds: the minimum slack with 0% SLA failures is 1.1 (above
// the 1.075 implied by the average predictive error, because the
// algorithm uses some predictions more than others), with SUmax = 62.7%
// server usage. Reducing slack from 1.1 first buys usage saving cheaply,
// the two costs then grow at a similar rate between 1.0 and 0.9, and below
// that failures grow faster until 100% failures at slack 0.
#include <iostream>

#include "common.hpp"
#include "rm/tuning.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Figures 7 & 8: balancing SLA failures against server "
               "usage with slack ==\n\n";

  bench::Setup setup(/*measure_mix=*/true);
  rm::TuningConfig config;
  config.planner = setup.hybrid.get();
  config.truth = setup.historical.get();
  config.pool = rm::standard_pool(setup.max_s, setup.max_f, setup.max_vf);
  for (double load = 1000.0; load <= 20000.0; load += 1000.0)
    config.loads.push_back(load);

  // Minimum zero-failure slack and SUmax (the paper: 1.1 and 62.7%).
  const rm::ZeroFailurePoint zero = rm::find_min_zero_failure_slack(
      config, {1.0, 1.025, 1.05, 1.075, 1.1, 1.15, 1.2, 1.3}, &setup.pool);
  std::cout << "minimum slack with 0% SLA failures: "
            << util::fmt(zero.slack, 3) << " (paper: 1.1)\n"
            << "SUmax (avg % server usage at that slack): "
            << util::fmt(zero.su_max_pct, 1) << "% (paper: 62.7%)\n\n";

  std::cout << "-- Figure 7: averages as slack is reduced from "
            << util::fmt(zero.slack, 2) << " to 0 --\n";
  std::vector<double> coarse;
  for (double s = zero.slack; s > 1e-9; s -= 0.1) coarse.push_back(s);
  coarse.push_back(0.0);
  const auto fig7 =
      rm::sweep_slack(config, coarse, zero.su_max_pct, &setup.pool);
  util::Table t7({"slack", "avg_sla_failure_pct", "avg_usage_saving_pct"});
  for (const rm::SlackPoint& p : fig7)
    t7.add_row({util::fmt(p.slack, 2), util::fmt(p.avg_sla_failure_pct, 2),
                util::fmt(p.avg_usage_saving_pct, 2)});
  t7.print(std::cout);

  std::cout << "\n-- Figure 8: the trade-off, zoomed to slack "
            << util::fmt(zero.slack, 2) << " .. 0.9 --\n";
  std::vector<double> fine;
  for (double s = zero.slack; s >= 0.9 - 1e-9; s -= 0.025) fine.push_back(s);
  const auto fig8 = rm::sweep_slack(config, fine, zero.su_max_pct, &setup.pool);
  util::Table t8({"slack", "avg_sla_failure_pct", "avg_usage_saving_pct",
                  "failure_increase_per_saving"});
  for (std::size_t i = 0; i < fig8.size(); ++i) {
    const rm::SlackPoint& p = fig8[i];
    std::string ratio = "-";
    if (i > 0) {
      const double d_fail =
          p.avg_sla_failure_pct - fig8[i - 1].avg_sla_failure_pct;
      const double d_save =
          p.avg_usage_saving_pct - fig8[i - 1].avg_usage_saving_pct;
      if (d_save > 1e-9) ratio = util::fmt(d_fail / d_save, 3);
    }
    t8.add_row({util::fmt(p.slack, 3), util::fmt(p.avg_sla_failure_pct, 3),
                util::fmt(p.avg_usage_saving_pct, 3), ratio});
  }
  t8.print(std::cout);

  std::cout << "\nexpected shape: saving grows faster than failures during "
               "the first reduction below the zero-failure slack; the rates "
               "roughly match between 1.0 and 0.9; failures dominate "
               "beyond, reaching 100% at slack 0.\n";
  return 0;
}
