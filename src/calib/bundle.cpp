#include "calib/bundle.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "hydra/relationships.hpp"
#include "hydra/serialize.hpp"

namespace epp::calib {

namespace {

/// The established reference server every support service measures on
/// (the paper's AppServF): first established catalog entry.
const ServerRecord& reference_server(const std::vector<ServerRecord>& servers) {
  for (const ServerRecord& record : servers)
    if (record.established) return record;
  throw std::logic_error("calibration catalog has no established server");
}

}  // namespace

const ServerRecord& CalibrationBundle::server(const std::string& name) const {
  for (const ServerRecord& record : servers)
    if (record.name == name) return record;
  throw std::invalid_argument("bundle has no server '" + name + "'");
}

double CalibrationBundle::max_throughput(const std::string& name) const {
  return server(name).max_throughput_rps;
}

CalibrationBundle calibrate(const CalibrationOptions& options) {
  CalibrationBundle bundle;
  bundle.lqn_seed = options.lqn_seed;
  bundle.mix_seed = options.mix_seed;
  bundle.sweep_seed = options.sweep_seed;
  bundle.servers = trade_catalog();

  // --- support service 2: benchmark request processing speeds -----------
  // One independent saturation run per server, fanned out on the pool.
  auto benchmark_one = [&](std::size_t i) {
    ServerRecord& record = bundle.servers[i];
    record.max_throughput_rps = sim::trade::measure_max_throughput(
        record.sim, 0.0, options.sweep_seed);
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(bundle.servers.size(), benchmark_one);
  } else {
    for (std::size_t i = 0; i < bundle.servers.size(); ++i) benchmark_one(i);
  }

  // --- support service 3: layered queuing calibration (table 2) ---------
  bundle.lqn = core::calibrate_lqn_from_testbed(options.lqn_seed, options.pool);

  // --- historical calibration: gradient m + 2 lower / 2 upper points ----
  const ServerRecord& reference = reference_server(bundle.servers);
  core::SweepOptions sweep;
  sweep.seed = options.sweep_seed;
  const auto grad_points = core::measure_sweep(reference.sim, {300.0, 600.0},
                                               sweep, options.pool);
  bundle.gradient_m = hydra::fit_gradient(
      {grad_points[0].clients, grad_points[1].clients},
      {grad_points[0].throughput_rps, grad_points[1].throughput_rps});

  core::HistoricalPredictor historical(bundle.gradient_m);
  for (const ServerRecord& record : bundle.servers) {
    if (!record.established) continue;
    const double knee = record.max_throughput_rps / bundle.gradient_m;
    const auto lower = core::measure_sweep(
        record.sim, {0.25 * knee, 0.60 * knee}, sweep, options.pool);
    const auto upper = core::measure_sweep(
        record.sim, {1.25 * knee, 1.70 * knee}, sweep, options.pool);
    historical.calibrate_established(record.name, core::to_data_points(lower),
                                     core::to_data_points(upper),
                                     record.max_throughput_rps);
    // Section 7.1: the same data points carry p90 samples, so the direct
    // percentile model calibrates for free.
    historical.calibrate_established_p90(
        record.name, core::to_p90_data_points(lower),
        core::to_p90_data_points(upper), record.max_throughput_rps);
  }
  for (const ServerRecord& record : bundle.servers) {
    if (record.established) continue;
    historical.register_new_server(record.name, record.max_throughput_rps);
    historical.register_new_server_p90(record.name, record.max_throughput_rps);
  }

  // --- relationship 3: the mixed-workload benchmark ----------------------
  if (options.measure_mix) {
    const double mix_pct = 100.0 * options.mix_buy_fraction;
    const double mix_max = sim::trade::measure_max_throughput(
        reference.sim, options.mix_buy_fraction, options.mix_seed);
    historical.calibrate_mix({0.0, mix_pct},
                             {reference.max_throughput_rps, mix_max});
    bundle.mix_points = {{0.0, reference.max_throughput_rps},
                         {mix_pct, mix_max}};
  }

  bundle.mean_model = historical.model();
  bundle.p90_model = historical.p90_model();
  return bundle;
}

// --- serialisation ---------------------------------------------------------

std::string to_text(const CalibrationBundle& bundle) {
  std::ostringstream os;
  os.precision(17);
  os << "epp-bundle v1\n";
  os << "seeds " << bundle.lqn_seed << ' ' << bundle.mix_seed << ' '
     << bundle.sweep_seed << '\n';
  os << "gradient " << bundle.gradient_m << '\n';
  auto write_params = [&](const char* type, const core::RequestTypeParams& p) {
    os << "lqn-params " << type << ' ' << p.app_demand_s << ' '
       << p.db_cpu_per_call_s << ' ' << p.disk_per_call_s << ' '
       << p.mean_db_calls << '\n';
  };
  write_params("browse", bundle.lqn.browse);
  write_params("buy", bundle.lqn.buy);
  for (const ServerRecord& record : bundle.servers)
    os << "server " << record.name << ' '
       << (record.established ? "established" : "new") << ' '
       << record.sim.speed << ' ' << record.sim.concurrency << ' '
       << record.arch.speed << ' ' << record.arch.app_concurrency << ' '
       << record.arch.db_concurrency << ' ' << record.max_throughput_rps
       << '\n';
  for (const MixPoint& point : bundle.mix_points)
    os << "mix-point " << point.buy_pct << ' ' << point.max_throughput_rps
       << '\n';
  auto write_model = [&](const char* which, const hydra::HistoricalModel& m) {
    const std::string text = hydra::to_text(m);
    std::size_t lines = 0;
    for (const char c : text)
      if (c == '\n') ++lines;
    os << "hydra-model " << which << ' ' << lines << '\n' << text;
  };
  write_model("mean", bundle.mean_model);
  write_model("p90", bundle.p90_model);
  return os.str();
}

CalibrationBundle bundle_from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) -> void {
    throw std::invalid_argument("epp bundle parse error, line " +
                                std::to_string(line_no) + ": " + message);
  };

  if (!std::getline(is, line)) {
    line_no = 1;
    fail("empty input");
  }
  ++line_no;
  if (line != "epp-bundle v1") fail("bad header '" + line + "'");

  CalibrationBundle bundle;
  bool have_gradient = false, have_browse = false, have_buy = false;
  bool have_mean = false, have_p90 = false;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "seeds") {
      if (!(ls >> bundle.lqn_seed >> bundle.mix_seed >> bundle.sweep_seed))
        fail("bad seeds record");
    } else if (kind == "gradient") {
      // Whether operator>> accepts "nan"/"inf" is implementation-defined,
      // and NaN slips through any `<= 0` comparison, so every numeric
      // field is checked for finiteness explicitly rather than trusting
      // the parse to reject it.
      if (!(ls >> bundle.gradient_m) || !std::isfinite(bundle.gradient_m) ||
          bundle.gradient_m <= 0.0)
        fail("bad gradient: want a finite positive value");
      have_gradient = true;
    } else if (kind == "lqn-params") {
      std::string type;
      core::RequestTypeParams params;
      if (!(ls >> type >> params.app_demand_s >> params.db_cpu_per_call_s >>
            params.disk_per_call_s >> params.mean_db_calls))
        fail("bad lqn-params record");
      for (const double value :
           {params.app_demand_s, params.db_cpu_per_call_s,
            params.disk_per_call_s, params.mean_db_calls})
        if (!std::isfinite(value) || value < 0.0)
          fail("lqn-params values must be finite and non-negative");
      if (type == "browse") {
        bundle.lqn.browse = params;
        have_browse = true;
      } else if (type == "buy") {
        bundle.lqn.buy = params;
        have_buy = true;
      } else {
        fail("unknown request type '" + type + "'");
      }
    } else if (kind == "server") {
      ServerRecord record;
      std::string provenance;
      if (!(ls >> record.name >> provenance >> record.sim.speed >>
            record.sim.concurrency >> record.arch.speed >>
            record.arch.app_concurrency >> record.arch.db_concurrency >>
            record.max_throughput_rps))
        fail("bad server record");
      if (provenance == "established") {
        record.established = true;
      } else if (provenance != "new") {
        fail("bad server provenance '" + provenance + "'");
      }
      for (const double value :
           {record.sim.speed, record.arch.speed, record.max_throughput_rps})
        if (!std::isfinite(value) || value <= 0.0)
          fail("server speeds and max throughput must be finite and positive");
      if (record.sim.concurrency == 0 || record.arch.app_concurrency == 0 ||
          record.arch.db_concurrency == 0)
        fail("server concurrency limits must be positive");
      record.sim.name = record.name;
      record.sim.established = record.established;
      record.arch.name = record.name;
      bundle.servers.push_back(std::move(record));
    } else if (kind == "mix-point") {
      MixPoint point;
      if (!(ls >> point.buy_pct >> point.max_throughput_rps))
        fail("bad mix-point record");
      if (!std::isfinite(point.buy_pct) || point.buy_pct < 0.0 ||
          point.buy_pct > 100.0)
        fail("mix-point buy percentage must be finite and within [0, 100]");
      if (!std::isfinite(point.max_throughput_rps) ||
          point.max_throughput_rps <= 0.0)
        fail("mix-point max throughput must be finite and positive");
      bundle.mix_points.push_back(point);
    } else if (kind == "hydra-model") {
      std::string which;
      std::size_t lines = 0;
      if (!(ls >> which >> lines)) fail("bad hydra-model record");
      if (which != "mean" && which != "p90")
        fail("unknown hydra-model block '" + which + "'");
      const int block_start = line_no;
      std::string block;
      for (std::size_t i = 0; i < lines; ++i) {
        if (!std::getline(is, line)) {
          line_no = block_start;
          fail("truncated hydra-model block: expected " +
               std::to_string(lines) + " lines, got " + std::to_string(i));
        }
        ++line_no;
        block += line;
        block += '\n';
      }
      try {
        if (which == "mean") {
          bundle.mean_model = hydra::model_from_text(block);
          have_mean = true;
        } else {
          bundle.p90_model = hydra::model_from_text(block);
          have_p90 = true;
        }
      } catch (const std::invalid_argument& error) {
        line_no = block_start;
        fail("embedded " + which + " model: " + error.what());
      }
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  ++line_no;
  if (!have_gradient) fail("missing gradient record");
  if (!have_browse || !have_buy) fail("missing lqn-params record");
  if (bundle.servers.empty()) fail("missing server records");
  if (!have_mean) fail("missing hydra-model mean block");
  if (!have_p90) fail("missing hydra-model p90 block");
  if (bundle.mean_model.gradient_m() != bundle.gradient_m)
    fail("gradient record disagrees with the embedded mean model");
  return bundle;
}

void save_bundle(const std::string& path, const CalibrationBundle& bundle) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << to_text(bundle);
  out.flush();
  if (!out) throw std::runtime_error("failed writing bundle to '" + path + "'");
}

CalibrationBundle load_bundle(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open bundle file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return bundle_from_text(text.str());
}

ArtifactCli parse_artifact_flags(int argc, char** argv) {
  ArtifactCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(arg + " wants a file path");
      return argv[++i];
    };
    if (arg == "--bundle") {
      cli.load_path = value();
    } else if (arg == "--save-bundle") {
      cli.save_path = value();
    } else {
      throw std::invalid_argument("unknown argument: " + arg);
    }
  }
  return cli;
}

CalibrationBundle acquire_bundle(const ArtifactCli& cli,
                                 const CalibrationOptions& options) {
  CalibrationBundle bundle = cli.load_path.empty()
                                 ? calibrate(options)
                                 : load_bundle(cli.load_path);
  if (!cli.save_path.empty()) save_bundle(cli.save_path, bundle);
  return bundle;
}

}  // namespace epp::calib
