#include "sim/resources.hpp"

#include <stdexcept>
#include <utility>

namespace epp::sim {

PsResource::PsResource(Engine& engine, double speed, std::string name)
    : engine_(engine), speed_(speed), name_(std::move(name)) {
  if (speed <= 0.0) throw std::invalid_argument("PsResource: speed <= 0");
  last_update_ = engine_.now();
}

void PsResource::advance_vtime() {
  const double now = engine_.now();
  if (!jobs_.empty()) {
    const double dt = now - last_update_;
    vtime_ += dt * speed_ / static_cast<double>(jobs_.size());
    busy_time_ += dt;
  }
  last_update_ = now;
}

void PsResource::on_completion(void* self, std::uint64_t) {
  auto& ps = *static_cast<PsResource*>(self);
  ps.pending_completion_.reset();
  ps.advance_vtime();
  // Numerical guard: the front job is complete by construction.
  auto it = ps.jobs_.begin();
  Engine::Callback done = std::move(it->second.on_complete);
  ps.jobs_.erase(it);
  ps.schedule_next_completion();
  done();
}

void PsResource::schedule_next_completion() {
  engine_.cancel(pending_completion_);
  pending_completion_.reset();
  if (jobs_.empty()) return;
  const double finish_v = jobs_.begin()->first;
  const double dt =
      (finish_v - vtime_) * static_cast<double>(jobs_.size()) / speed_;
  // Raw typed dispatch: completion events are the engine's hottest
  // customers and carry no state beyond `this`.
  pending_completion_ = engine_.schedule_raw_after(std::max(0.0, dt),
                                                   &PsResource::on_completion,
                                                   this);
}

void PsResource::add_job(double demand, Engine::Callback on_complete) {
  if (demand < 0.0) throw std::invalid_argument("PsResource: negative demand");
  advance_vtime();
  const double finish_v = vtime_ + demand;
  jobs_.emplace(finish_v, Job{finish_v, next_seq_++, std::move(on_complete)});
  schedule_next_completion();
}

double PsResource::utilization(double now) const {
  if (now <= 0.0) return 0.0;
  double busy = busy_time_;
  if (!jobs_.empty()) busy += now - last_update_;
  return busy / now;
}

FifoResource::FifoResource(Engine& engine, double speed, std::string name)
    : engine_(engine), speed_(speed), name_(std::move(name)) {
  if (speed <= 0.0) throw std::invalid_argument("FifoResource: speed <= 0");
}

void FifoResource::add_job(double demand, Engine::Callback on_complete) {
  if (demand < 0.0) throw std::invalid_argument("FifoResource: negative demand");
  queue_.push_back(Job{demand, std::move(on_complete)});
  if (!busy_) start_next();
}

void FifoResource::on_job_done(void* self, std::uint64_t) {
  auto& fifo = *static_cast<FifoResource*>(self);
  fifo.busy_time_ += fifo.engine_.now() - fifo.busy_since_;
  Engine::Callback done = std::move(fifo.current_done_);
  fifo.start_next();
  done();
}

void FifoResource::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  busy_since_ = engine_.now();
  Job job = std::move(queue_.front());
  queue_.pop_front();
  current_done_ = std::move(job.on_complete);
  engine_.schedule_raw_after(job.demand / speed_, &FifoResource::on_job_done,
                             this);
}

double FifoResource::utilization(double now) const {
  if (now <= 0.0) return 0.0;
  double busy = busy_time_;
  if (busy_) busy += now - busy_since_;
  return busy / now;
}

SlotPool::SlotPool(std::size_t capacity, std::size_t num_queues)
    : capacity_(capacity), queues_(num_queues) {
  if (capacity == 0) throw std::invalid_argument("SlotPool: zero capacity");
  if (num_queues == 0) throw std::invalid_argument("SlotPool: zero queues");
}

void SlotPool::acquire(std::size_t queue, Engine::Callback on_acquired) {
  if (queue >= queues_.size())
    throw std::out_of_range("SlotPool: bad queue index");
  if (in_use_ < capacity_) {
    ++in_use_;
    on_acquired();
    return;
  }
  queues_[queue].push_back(std::move(on_acquired));
}

void SlotPool::release() {
  if (in_use_ == 0) throw std::logic_error("SlotPool: release without acquire");
  // Admit the next waiter round-robin across non-empty source queues so no
  // application server can starve the others at the DB tier.
  for (std::size_t probe = 0; probe < queues_.size(); ++probe) {
    auto& q = queues_[(rr_next_ + probe) % queues_.size()];
    if (!q.empty()) {
      rr_next_ = (rr_next_ + probe + 1) % queues_.size();
      Engine::Callback next = std::move(q.front());
      q.pop_front();
      next();  // slot ownership transfers to the admitted waiter
      return;
    }
  }
  --in_use_;
}

std::size_t SlotPool::waiting() const noexcept {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

}  // namespace epp::sim
