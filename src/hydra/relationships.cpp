#include "hydra/relationships.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epp::hydra {
namespace {

/// Exponential curve through two points (used for the transition phasing).
struct TwoPointExp {
  double coeff, rate;
  double operator()(double x) const { return coeff * std::exp(rate * x); }
};

TwoPointExp exp_through(double x1, double y1, double x2, double y2) {
  if (y1 <= 0.0 || y2 <= 0.0 || x1 == x2)
    throw std::domain_error("transition: degenerate endpoints");
  const double rate = std::log(y2 / y1) / (x2 - x1);
  const double coeff = y1 * std::exp(-rate * x1);
  return {coeff, rate};
}

}  // namespace

double Relationship1::clients_at_max_throughput() const {
  if (gradient_m <= 0.0)
    throw std::domain_error("Relationship1: non-positive gradient");
  return max_throughput_rps / gradient_m;
}

double Relationship1::predict_metric(double clients) const {
  if (clients < 0.0)
    throw std::invalid_argument("Relationship1: negative clients");
  const double n_star = clients_at_max_throughput();
  const double n1 = transition_lo * n_star;
  const double n2 = transition_hi * n_star;
  const auto lower = [&](double n) {
    return c_lower * std::exp(lambda_lower * n);
  };
  const auto upper = [&](double n) { return lambda_upper * n + c_upper; };
  if (clients <= n1) return lower(clients);
  // The transition phasing needs a non-degenerate band (lo < hi) with
  // positive endpoint values; a strongly negative fitted intercept c_upper
  // can make upper(n2) <= 0, where the two-point exponential is undefined
  // (it used to throw domain_error mid-range) and where the upper equation
  // alone would predict negative response times just past the band. In
  // either degenerate case, hard-switch between the equations, taking the
  // larger so the curve stays monotone and positive until the upper
  // equation takes over naturally.
  const double y1 = lower(n1), y2 = upper(n2);
  const bool phased = n2 > n1 && y1 > 0.0 && y2 > 0.0;
  if (!phased) return std::max(lower(clients), upper(clients));
  if (clients >= n2) return upper(clients);
  // Exponential phasing between the two equations across the band.
  const TwoPointExp transition = exp_through(n1, y1, n2, y2);
  return transition(clients);
}

double Relationship1::predict_throughput(double clients) const {
  if (clients < 0.0)
    throw std::invalid_argument("Relationship1: negative clients");
  return std::min(gradient_m * clients, max_throughput_rps);
}

double Relationship1::clients_for_metric(double metric_s) const {
  if (metric_s <= 0.0)
    throw std::invalid_argument("Relationship1: non-positive metric goal");
  if (metric_s <= predict_metric(0.0)) return 0.0;
  // Bracket then bisect: predict_metric is monotone non-decreasing.
  double lo = 0.0, hi = std::max(1.0, clients_at_max_throughput());
  while (predict_metric(hi) < metric_s) {
    hi *= 2.0;
    if (hi > 1e12)
      throw std::domain_error("Relationship1: goal unreachable");
  }
  for (int i = 0; i < 200 && hi - lo > 1e-6 * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    (predict_metric(mid) < metric_s ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

Relationship1 fit_relationship1(const std::vector<DataPoint>& lower,
                                const std::vector<DataPoint>& upper,
                                double max_throughput_rps, double gradient_m) {
  if (lower.size() < 2 || upper.size() < 2)
    throw std::invalid_argument(
        "fit_relationship1: need at least two data points per equation");
  if (max_throughput_rps <= 0.0 || gradient_m <= 0.0)
    throw std::invalid_argument(
        "fit_relationship1: max throughput and gradient must be positive");

  std::vector<double> xs, ys;
  for (const DataPoint& p : lower) {
    xs.push_back(p.clients);
    ys.push_back(p.metric_s);
  }
  const util::ExponentialFit low = util::fit_exponential(xs, ys);

  xs.clear();
  ys.clear();
  for (const DataPoint& p : upper) {
    xs.push_back(p.clients);
    ys.push_back(p.metric_s);
  }
  const util::LinearFit up = util::fit_linear(xs, ys);

  Relationship1 rel;
  rel.c_lower = low.coeff;
  rel.lambda_lower = std::max(low.rate, kMinLambdaLower);
  rel.lambda_upper = up.slope;
  rel.c_upper = up.intercept;
  rel.max_throughput_rps = max_throughput_rps;
  rel.gradient_m = gradient_m;
  if (rel.lambda_upper <= 0.0)
    throw std::invalid_argument(
        "fit_relationship1: upper equation must have positive slope");
  return rel;
}

double fit_gradient(const std::vector<double>& clients,
                    const std::vector<double>& throughput) {
  if (clients.size() != throughput.size() || clients.empty())
    throw std::invalid_argument("fit_gradient: bad inputs");
  // Least squares through the origin: m = sum(x y) / sum(x^2).
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    sxy += clients[i] * throughput[i];
    sxx += clients[i] * clients[i];
  }
  if (sxx == 0.0) throw std::invalid_argument("fit_gradient: zero clients");
  return sxy / sxx;
}

Relationship1 Relationship2::predict_for(double max_throughput_rps,
                                         double gradient_m) const {
  Relationship1 rel;
  rel.c_lower = c_lower_vs_max_tput(max_throughput_rps);
  rel.lambda_lower =
      std::max(lambda_lower_vs_max_tput(max_throughput_rps), kMinLambdaLower);
  rel.lambda_upper = lambda_upper_times_max_tput / max_throughput_rps;
  rel.c_upper = c_upper_mean;
  rel.max_throughput_rps = max_throughput_rps;
  rel.gradient_m = gradient_m;
  if (rel.c_lower <= 0.0)
    // Extrapolating far outside the calibrated range can cross zero; clamp
    // to the smallest plausible base response time rather than go negative.
    rel.c_lower = 1e-6;
  return rel;
}

Relationship2 fit_relationship2(const std::vector<Relationship1>& servers) {
  if (servers.size() < 2)
    throw std::invalid_argument(
        "fit_relationship2: need at least two established servers");
  std::vector<double> mx, cl, lx, ly;
  double k = 0.0, cu = 0.0, ll_sum = 0.0;
  for (const Relationship1& s : servers) {
    mx.push_back(s.max_throughput_rps);
    cl.push_back(s.c_lower);
    // Rates at the clamp floor are artifacts of a flat lower fit, not
    // measurements; their logs (~ -27.6) would dominate the log-log
    // regression and wildly skew the cross-server power law, so only
    // genuine rates enter it.
    if (s.lambda_lower > kMinLambdaLower) {
      lx.push_back(s.max_throughput_rps);
      ly.push_back(s.lambda_lower);
    }
    ll_sum += s.lambda_lower;
    k += s.lambda_upper * s.max_throughput_rps;
    cu += s.c_upper;
  }
  Relationship2 rel;
  rel.c_lower_vs_max_tput = util::fit_linear(mx, cl);
  if (ly.size() >= 2) {
    rel.lambda_lower_vs_max_tput = util::fit_power(lx, ly);
  } else {
    // Fewer than two genuine rates leave no trend to fit: fall back to a
    // constant power law (exponent 0) at the mean observed rate.
    rel.lambda_lower_vs_max_tput.coeff =
        ll_sum / static_cast<double>(servers.size());
    rel.lambda_lower_vs_max_tput.exponent = 0.0;
    rel.lambda_lower_vs_max_tput.r_squared = 0.0;
  }
  rel.lambda_upper_times_max_tput = k / static_cast<double>(servers.size());
  rel.c_upper_mean = cu / static_cast<double>(servers.size());
  return rel;
}

double Relationship3::established(double buy_pct) const {
  return max_tput_vs_buy_pct(buy_pct);
}

double Relationship3::predict(double buy_pct,
                              double new_server_max_at_typical) const {
  const double at_typical = established(0.0);
  if (at_typical <= 0.0)
    throw std::domain_error("Relationship3: non-positive typical throughput");
  return established(buy_pct) * new_server_max_at_typical / at_typical;
}

Relationship3 fit_relationship3(const std::vector<double>& buy_pct,
                                const std::vector<double>& max_tput) {
  if (buy_pct.size() < 2)
    throw std::invalid_argument("fit_relationship3: need >= 2 points");
  Relationship3 rel;
  rel.max_tput_vs_buy_pct = util::fit_linear(buy_pct, max_tput);
  return rel;
}

}  // namespace epp::hydra
