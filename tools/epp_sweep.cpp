// epp_sweep — batch prediction sweeps from the command line.
//
// Calibrates the three prediction methods from the simulated testbed once,
// then drives the svc::BatchPredictor over the full client-load x buy-mix
// x method x server grid: the exact question stream a resource manager
// issues when comparing candidate architectures (paper sections 8.2/8.5).
// Repeated passes show the memoization cache at work — pass 1 computes,
// later passes answer from the sharded LRU.
//
// Usage:
//   epp_sweep [--loads lo:hi:step] [--buys p1,p2,...]
//             [--methods historical,lqn,hybrid] [--servers n1,n2,...]
//             [--threads N] [--passes N] [--csv]
#include <cstddef>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "core/hybrid_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "hydra/relationships.hpp"
#include "sim/trade/testbed.hpp"
#include "svc/batch_predictor.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace epp;

struct SweepConfig {
  std::vector<double> loads;
  std::vector<double> buy_pcts{0.0, 25.0};
  std::vector<svc::Method> methods{svc::Method::kHistorical, svc::Method::kLqn,
                                   svc::Method::kHybrid};
  std::vector<std::string> servers{"AppServS", "AppServF", "AppServVF"};
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  std::size_t passes = 2;
  bool csv = false;
};

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

std::vector<double> parse_range(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() != 3)
    throw std::invalid_argument("--loads wants lo:hi:step, got '" + spec + "'");
  const double lo = std::stod(parts[0]);
  const double hi = std::stod(parts[1]);
  const double step = std::stod(parts[2]);
  if (step <= 0.0 || hi < lo)
    throw std::invalid_argument("--loads wants lo<=hi and step>0");
  std::vector<double> loads;
  for (double v = lo; v <= hi + 1e-9; v += step) loads.push_back(v);
  return loads;
}

std::vector<double> parse_doubles(const std::string& spec) {
  std::vector<double> values;
  for (const std::string& part : split(spec, ',')) values.push_back(std::stod(part));
  if (values.empty()) throw std::invalid_argument("empty list: '" + spec + "'");
  return values;
}

int usage(std::ostream& out) {
  out << "usage: epp_sweep [--loads lo:hi:step] [--buys p1,p2,...]\n"
         "                 [--methods historical,lqn,hybrid]\n"
         "                 [--servers AppServS,AppServF,AppServVF]\n"
         "                 [--threads N] [--passes N] [--csv]\n\n"
         "Calibrates all three predictors from the simulated testbed, then\n"
         "batch-evaluates the client-load x buy-mix grid for every method\n"
         "and server through the concurrent memoizing prediction engine.\n";
  return 1;
}

SweepConfig parse_args(int argc, char** argv) {
  SweepConfig config;
  config.loads = parse_range("200:1400:100");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(arg) + " wants a value");
      return argv[++i];
    };
    if (arg == "--loads") {
      config.loads = parse_range(value());
    } else if (arg == "--buys") {
      config.buy_pcts = parse_doubles(value());
    } else if (arg == "--methods") {
      config.methods.clear();
      for (const std::string& name : split(value(), ','))
        config.methods.push_back(svc::method_from_name(name));
      if (config.methods.empty())
        throw std::invalid_argument("--methods wants at least one method");
    } else if (arg == "--servers") {
      config.servers = split(value(), ',');
      if (config.servers.empty())
        throw std::invalid_argument("--servers wants at least one server");
    } else if (arg == "--threads") {
      config.threads = std::stoul(value());
      if (config.threads == 0)
        throw std::invalid_argument("--threads wants at least 1");
    } else if (arg == "--passes") {
      config.passes = std::stoul(value());
      if (config.passes == 0)
        throw std::invalid_argument("--passes wants at least 1");
    } else if (arg == "--csv") {
      config.csv = true;
    } else {
      throw std::invalid_argument("unknown argument: " + std::string(arg));
    }
  }
  return config;
}

core::WorkloadSpec mixed_load(double total_clients, double buy_pct) {
  core::WorkloadSpec w;
  w.buy_clients = total_clients * buy_pct / 100.0;
  w.browse_clients = total_clients - w.buy_clients;
  return w;
}

}  // namespace

int main(int argc, char** argv) try {
  const SweepConfig config = parse_args(argc, argv);
  util::ThreadPool pool(config.threads);

  // --- calibration (mirrors examples/capacity_planning) -------------------
  std::cerr << "calibrating from the simulated testbed...\n";
  const util::Timer calibration_timer;
  const double max_s = sim::trade::measure_max_throughput(sim::trade::app_serv_s());
  const double max_f = sim::trade::measure_max_throughput(sim::trade::app_serv_f());
  const double max_vf = sim::trade::measure_max_throughput(sim::trade::app_serv_vf());

  const core::TradeCalibration calibration =
      core::calibrate_lqn_from_testbed(7, &pool);
  core::LqnPredictor lqn(calibration);
  core::HybridPredictor hybrid(calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()}) {
    lqn.register_server(arch);
    hybrid.register_server(arch);
  }

  const auto grad = core::measure_sweep(sim::trade::app_serv_f(), {300.0, 600.0},
                                        {}, &pool);
  const double m =
      hydra::fit_gradient({grad[0].clients, grad[1].clients},
                          {grad[0].throughput_rps, grad[1].throughput_rps});
  core::HistoricalPredictor historical(m);
  for (const auto& [name, spec, max] :
       {std::tuple{"AppServF", sim::trade::app_serv_f(), max_f},
        std::tuple{"AppServVF", sim::trade::app_serv_vf(), max_vf}}) {
    const double knee = max / m;
    historical.calibrate_established(
        name,
        core::to_data_points(
            core::measure_sweep(spec, {0.25 * knee, 0.6 * knee}, {}, &pool)),
        core::to_data_points(
            core::measure_sweep(spec, {1.25 * knee, 1.7 * knee}, {}, &pool)),
        max);
  }
  historical.register_new_server("AppServS", max_s);
  // Relationship 3, so the historical method can answer buy-mix cells.
  const double max_f_25 =
      sim::trade::measure_max_throughput(sim::trade::app_serv_f(), 0.25, 11);
  historical.calibrate_mix({0.0, 25.0}, {max_f, max_f_25});
  std::cerr << "calibrated in " << util::fmt(calibration_timer.elapsed_ms(), 0)
            << " ms\n";

  // --- the grid ------------------------------------------------------------
  std::vector<svc::PredictionRequest> grid;
  for (const std::string& server : config.servers)
    for (const double buy_pct : config.buy_pcts)
      for (const double clients : config.loads)
        for (const svc::Method method : config.methods)
          grid.push_back({method, server, mixed_load(clients, buy_pct)});

  svc::BatchPredictor engine(&historical, &lqn, &hybrid);
  std::vector<svc::PredictionResult> results;
  for (std::size_t pass = 1; pass <= config.passes; ++pass) {
    const util::Timer timer;
    results = engine.predict_batch(grid, &pool);
    std::cerr << "pass " << pass << "/" << config.passes << ": " << grid.size()
              << " predictions in " << util::fmt(timer.elapsed_ms(), 2)
              << " ms on " << config.threads << " thread(s)\n";
  }

  // --- output --------------------------------------------------------------
  const std::size_t methods = config.methods.size();
  if (config.csv) {
    std::cout << "server,buy_pct,clients,method,mean_rt_ms,throughput_rps\n";
    for (std::size_t i = 0; i < grid.size(); ++i)
      std::cout << grid[i].server << ','
                << util::fmt(100.0 * grid[i].workload.buy_fraction(), 1) << ','
                << util::fmt(grid[i].workload.total_clients(), 0) << ','
                << svc::method_name(grid[i].method) << ','
                << util::fmt(results[i].mean_rt_s * 1e3, 3) << ','
                << util::fmt(results[i].throughput_rps, 3) << '\n';
  } else {
    std::vector<std::string> headers{"server", "buy_pct", "clients"};
    for (const svc::Method method : config.methods)
      headers.push_back(std::string(svc::method_name(method)) + "_rt_ms");
    util::Table table(headers);
    std::size_t cursor = 0;
    for (const std::string& server : config.servers)
      for (const double buy_pct : config.buy_pcts)
        for (const double clients : config.loads) {
          std::vector<std::string> row{server, util::fmt(buy_pct, 0),
                                       util::fmt(clients, 0)};
          for (std::size_t mi = 0; mi < methods; ++mi)
            row.push_back(util::fmt(results[cursor + mi].mean_rt_s * 1e3, 2));
          cursor += methods;
          table.add_row(row);
        }
    table.print(std::cout);
  }

  const svc::CacheStats stats = engine.cache_stats();
  std::cerr << "cache: " << stats.hits << " hits, " << stats.misses
            << " misses, " << stats.evictions << " evictions ("
            << util::fmt(100.0 * stats.hit_ratio(), 1) << "% hit ratio, "
            << stats.entries << " entries)\n";
  return 0;
} catch (const std::exception& error) {
  std::cerr << "epp_sweep: " << error.what() << "\n\n";
  return usage(std::cerr);
}
