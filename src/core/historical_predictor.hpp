// The historical (HYDRA) method as a Predictor (paper section 4).
//
// Calibration: relationship-1 fits from measured data points on
// established servers; relationship 2 then extrapolates the parameters of
// a *new* architecture from its benchmarked max throughput; relationship 3
// scales max throughput with the workload's buy-request percentage.
//
// Predictions are closed-form, hence near-instant (section 8.5), and the
// SLA capacity question is answered by inverting the equations directly
// instead of searching (section 8.2).
#pragma once

#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "hydra/model.hpp"

namespace epp::core {

class HistoricalPredictor final : public Predictor {
 public:
  /// gradient_m: the shared clients->throughput slope (0.14 in the paper;
  /// it depends on the think time, not the server).
  explicit HistoricalPredictor(double gradient_m);

  /// Restore a predictor from fitted models (e.g. a persisted calibration
  /// bundle): the mean-response-time model and its direct-p90 companion.
  /// Both must share one gradient; throws std::invalid_argument otherwise.
  HistoricalPredictor(hydra::HistoricalModel model,
                      hydra::HistoricalModel p90_model);

  // --- calibration -----------------------------------------------------
  void calibrate_established(const std::string& server,
                             const std::vector<hydra::DataPoint>& lower,
                             const std::vector<hydra::DataPoint>& upper,
                             double max_throughput_rps);
  /// New architecture from its benchmarked typical-workload max throughput
  /// (relationship 2 supplies response-time parameters).
  void register_new_server(const std::string& server,
                           double max_throughput_rps);
  /// Relationship-3 calibration from (buy %, max throughput) points on an
  /// established server.
  void calibrate_mix(const std::vector<double>& buy_pct,
                     const std::vector<double>& max_tput);

  /// Section 7.1: the historical method can record percentile metrics as
  /// variables and predict them *directly* (no distribution
  /// extrapolation), avoiding the small accuracy loss of equations 6/7.
  /// Calibrate with data points whose metric is the p90 response time.
  void calibrate_established_p90(const std::string& server,
                                 const std::vector<hydra::DataPoint>& lower,
                                 const std::vector<hydra::DataPoint>& upper,
                                 double max_throughput_rps);
  void register_new_server_p90(const std::string& server,
                               double max_throughput_rps);
  bool has_direct_p90(const std::string& server) const;
  /// Direct p90 prediction; throws std::logic_error if not calibrated.
  double predict_p90_direct(const std::string& server, double clients) const;

  const hydra::HistoricalModel& model() const noexcept { return model_; }
  hydra::HistoricalModel& model() noexcept { return model_; }
  const hydra::HistoricalModel& p90_model() const noexcept {
    return p90_model_;
  }

  // --- predictions -------------------------------------------------------
  std::string name() const override { return "historical"; }
  double predict_mean_rt_s(const std::string& server,
                           const WorkloadSpec& workload) const override;
  double predict_throughput_rps(const std::string& server,
                                const WorkloadSpec& workload) const override;
  double predict_max_throughput_rps(const std::string& server,
                                    double buy_fraction) const override;
  bool predicts_saturated(const std::string& server,
                          const WorkloadSpec& workload) const override;

  /// Closed-form capacity: a single inversion instead of a search.
  CapacityResult max_clients_for_goal(const std::string& server,
                                      double goal_s, double buy_fraction = 0.0,
                                      double think_time_s = 7.0) const override;

 private:
  /// Relationship-1 parameters for the server at a workload mix: the
  /// server's own fit for the typical workload, or a relationship-2
  /// derivation at the relationship-3 max throughput for mixed workloads.
  hydra::Relationship1 rel1_for(const std::string& server,
                                double buy_fraction) const;

  hydra::HistoricalModel model_;
  hydra::HistoricalModel p90_model_;  // same machinery, p90 metric
};

}  // namespace epp::core
