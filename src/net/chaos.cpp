#include "net/chaos.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace epp::net {

ChaosPolicy::ChaosPolicy(ChaosConfig config, std::uint64_t seed) noexcept
    : config_(config), seed_(seed) {}

double ChaosPolicy::unit_draw(
    std::uint64_t stream_tag, std::atomic<std::uint64_t>& counter) const noexcept {
  const std::uint64_t draw = counter.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t state = seed_;
  state ^= (stream_tag + 1) * 0xBF58476D1CE4E5B9ULL;
  state ^= (draw + 1) * 0x94D049BB133111EBULL;
  const std::uint64_t bits = util::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool ChaosPolicy::reset_on_accept() const noexcept {
  if (config_.accept_reset_p <= 0.0) return false;
  const bool reset = unit_draw(1, accept_reset_draws_) < config_.accept_reset_p;
  if (reset)
    counters_.accept_resets.fetch_add(1, std::memory_order_relaxed);
  return reset;
}

double ChaosPolicy::accept_delay_s() const noexcept {
  if (config_.accept_delay_s <= 0.0) return 0.0;
  const double u = unit_draw(2, accept_delay_draws_);
  counters_.accept_delays.fetch_add(1, std::memory_order_relaxed);
  // Exponential around the mean, capped at 10x so one unlucky draw cannot
  // park a session for minutes.
  return std::min(-config_.accept_delay_s * std::log1p(-u),
                  10.0 * config_.accept_delay_s);
}

WriteFault ChaosPolicy::next_write_fault() const noexcept {
  if (config_.reset_p <= 0.0 && config_.truncate_p <= 0.0)
    return WriteFault::kNone;
  // One draw decides both faults: [0, reset_p) resets, the next
  // truncate_p-wide band truncates, the rest writes cleanly.
  const double u = unit_draw(3, write_draws_);
  if (u < config_.reset_p) {
    counters_.write_resets.fetch_add(1, std::memory_order_relaxed);
    return WriteFault::kReset;
  }
  if (u < config_.reset_p + config_.truncate_p) {
    counters_.write_truncates.fetch_add(1, std::memory_order_relaxed);
    return WriteFault::kTruncate;
  }
  return WriteFault::kNone;
}

double ChaosPolicy::dribble_pause_s() const noexcept {
  if (config_.dribble_s <= 0.0) return 0.0;
  const double u = unit_draw(4, dribble_draws_);
  return std::min(-config_.dribble_s * std::log1p(-u), 0.050);
}

ChaosStats ChaosPolicy::stats() const noexcept {
  ChaosStats stats;
  stats.accept_resets =
      counters_.accept_resets.load(std::memory_order_relaxed);
  stats.accept_delays =
      counters_.accept_delays.load(std::memory_order_relaxed);
  stats.write_resets = counters_.write_resets.load(std::memory_order_relaxed);
  stats.write_truncates =
      counters_.write_truncates.load(std::memory_order_relaxed);
  stats.dribbled_writes =
      counters_.dribbled_writes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace epp::net
