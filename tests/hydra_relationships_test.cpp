#include "hydra/relationships.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace epp::hydra {
namespace {

/// A synthetic server whose behaviour follows the paper's equations
/// exactly: closed-system physics with max throughput X*, think Z.
struct SyntheticServer {
  double max_tput;          // requests/second
  double think = 7.0;       // seconds
  double base_rt = 0.05;    // light-load response time (seconds)

  double gradient() const { return 1.0 / (think + base_rt); }
  double n_star() const { return max_tput / gradient(); }
  /// Ground truth: exponential rise to the knee, then N/X - Z.
  double rt(double n) const {
    const double upper = n / max_tput - think;
    const double lower =
        base_rt * std::exp(std::log(2.0) * n / n_star());  // doubles by knee
    return std::max(lower, upper);
  }
  DataPoint at(double n) const { return {n, rt(n), 50}; }
};

Relationship1 fit_synthetic(const SyntheticServer& s) {
  // The paper's minimal calibration: two lower + two upper points.
  const std::vector<DataPoint> lower{s.at(0.2 * s.n_star()),
                                     s.at(0.6 * s.n_star())};
  const std::vector<DataPoint> upper{s.at(1.2 * s.n_star()),
                                     s.at(1.8 * s.n_star())};
  return fit_relationship1(lower, upper, s.max_tput, s.gradient());
}

TEST(Relationship1, RecoversLowerEquationThroughPoints) {
  const SyntheticServer s{186.0};
  const Relationship1 rel = fit_synthetic(s);
  // Two-point exponential fit passes through both calibration points.
  EXPECT_NEAR(rel.predict_metric(0.2 * s.n_star()), s.rt(0.2 * s.n_star()),
              1e-9);
  EXPECT_NEAR(rel.predict_metric(0.6 * s.n_star()), s.rt(0.6 * s.n_star()),
              1e-9);
}

TEST(Relationship1, RecoversUpperEquation) {
  const SyntheticServer s{186.0};
  const Relationship1 rel = fit_synthetic(s);
  EXPECT_NEAR(rel.lambda_upper, 1.0 / s.max_tput, 1e-9);
  EXPECT_NEAR(rel.c_upper, -s.think, 1e-6);
  EXPECT_NEAR(rel.predict_metric(2.5 * s.n_star()), s.rt(2.5 * s.n_star()),
              1e-6);
}

TEST(Relationship1, ThroughputLinearThenFlat) {
  const SyntheticServer s{186.0};
  const Relationship1 rel = fit_synthetic(s);
  EXPECT_NEAR(rel.predict_throughput(100.0), 100.0 * s.gradient(), 1e-9);
  EXPECT_NEAR(rel.predict_throughput(10.0 * s.n_star()), s.max_tput, 1e-9);
}

TEST(Relationship1, TransitionIsContinuousAndMonotone) {
  const SyntheticServer s{186.0};
  const Relationship1 rel = fit_synthetic(s);
  const double n1 = rel.transition_lo * rel.clients_at_max_throughput();
  const double n2 = rel.transition_hi * rel.clients_at_max_throughput();
  // Continuity at the band edges.
  EXPECT_NEAR(rel.predict_metric(n1 - 1e-6), rel.predict_metric(n1 + 1e-6),
              1e-4);
  EXPECT_NEAR(rel.predict_metric(n2 - 1e-6), rel.predict_metric(n2 + 1e-6),
              1e-4);
  // Monotonicity through the band.
  double prev = 0.0;
  for (double n = 0.0; n <= 2.0 * n2; n += n2 / 50.0) {
    const double rt = rel.predict_metric(n);
    EXPECT_GE(rt, prev - 1e-12) << n;
    prev = rt;
  }
}

TEST(Relationship1, InverseRoundTrips) {
  const SyntheticServer s{186.0};
  const Relationship1 rel = fit_synthetic(s);
  for (double n : {200.0, 800.0, 1400.0, 2500.0}) {
    const double goal = rel.predict_metric(n);
    EXPECT_NEAR(rel.clients_for_metric(goal), n, 0.01 * n) << n;
  }
}

TEST(Relationship1, InverseEdgeCases) {
  const SyntheticServer s{186.0};
  const Relationship1 rel = fit_synthetic(s);
  EXPECT_DOUBLE_EQ(rel.clients_for_metric(1e-9), 0.0);  // goal below base RT
  EXPECT_THROW(rel.clients_for_metric(0.0), std::invalid_argument);
  EXPECT_THROW(rel.predict_metric(-1.0), std::invalid_argument);
}

TEST(Relationship1, FitRejectsTooFewPoints) {
  const SyntheticServer s{186.0};
  const std::vector<DataPoint> one{s.at(100.0)};
  const std::vector<DataPoint> two{s.at(1500.0), s.at(2000.0)};
  EXPECT_THROW(fit_relationship1(one, two, s.max_tput, s.gradient()),
               std::invalid_argument);
  EXPECT_THROW(fit_relationship1(two, one, s.max_tput, s.gradient()),
               std::invalid_argument);
  EXPECT_THROW(fit_relationship1(two, two, 0.0, s.gradient()),
               std::invalid_argument);
}

TEST(Relationship1, NegativeUpperInterceptFallsBackToHardSwitch) {
  // Regression: a fitted c_upper negative enough that upper(n2) <= 0 made
  // the two-point transition exponential throw domain_error mid-range;
  // it must fall back to the hard switch max(lower, upper) instead.
  Relationship1 rel;
  rel.c_lower = 0.05;
  rel.lambda_lower = 5e-4;
  rel.lambda_upper = 1.0 / 186.0;
  rel.c_upper = -9.0;  // upper(n2) = n2/186 - 9 < 0 inside the band
  rel.max_throughput_rps = 186.0;
  rel.gradient_m = 0.14;
  const double n_star = rel.clients_at_max_throughput();
  const double n2 = rel.transition_hi * n_star;
  ASSERT_LE(rel.lambda_upper * n2 + rel.c_upper, 0.0);  // scenario holds
  double prev = 0.0;
  for (double n = 0.0; n <= 1.5 * n2; n += n2 / 64.0) {
    double rt = 0.0;
    ASSERT_NO_THROW(rt = rel.predict_metric(n)) << n;
    EXPECT_GT(rt, 0.0) << n;
    EXPECT_GE(rt, prev - 1e-12) << n;  // still monotone
    prev = rt;
  }
  // Inside the band the fallback is exactly the hard switch.
  const double mid = 0.5 * (rel.transition_lo + rel.transition_hi) * n_star;
  const double lower = rel.c_lower * std::exp(rel.lambda_lower * mid);
  const double upper = rel.lambda_upper * mid + rel.c_upper;
  EXPECT_DOUBLE_EQ(rel.predict_metric(mid), std::max(lower, upper));
  // The closed-form inverse keeps working through the fallback region.
  const double goal = rel.predict_metric(1.3 * n_star);
  EXPECT_NEAR(rel.clients_for_metric(goal), 1.3 * n_star, 0.02 * n_star);
}

TEST(Relationship2, ExcludesClampedLambdaLowerFromPowerFit) {
  // A server whose flat lower trend was clamped to kMinLambdaLower would
  // otherwise drag the cross-server power law towards log(1e-12).
  const SyntheticServer f{186.0}, vf{320.0};
  Relationship1 clamped = fit_synthetic(SyntheticServer{86.0});
  clamped.lambda_lower = kMinLambdaLower;
  const Relationship2 with_clamped =
      fit_relationship2({fit_synthetic(f), fit_synthetic(vf), clamped});
  const Relationship2 genuine_only =
      fit_relationship2({fit_synthetic(f), fit_synthetic(vf)});
  EXPECT_DOUBLE_EQ(with_clamped.lambda_lower_vs_max_tput.coeff,
                   genuine_only.lambda_lower_vs_max_tput.coeff);
  EXPECT_DOUBLE_EQ(with_clamped.lambda_lower_vs_max_tput.exponent,
                   genuine_only.lambda_lower_vs_max_tput.exponent);
}

TEST(Relationship2, AllClampedFallsBackToConstantRate) {
  Relationship1 a = fit_synthetic(SyntheticServer{186.0});
  Relationship1 b = fit_synthetic(SyntheticServer{320.0});
  a.lambda_lower = kMinLambdaLower;
  b.lambda_lower = kMinLambdaLower;
  const Relationship2 rel = fit_relationship2({a, b});
  EXPECT_DOUBLE_EQ(rel.lambda_lower_vs_max_tput.exponent, 0.0);
  EXPECT_DOUBLE_EQ(rel.lambda_lower_vs_max_tput.coeff, kMinLambdaLower);
  // Derived servers keep a sane (floor) rate instead of a skewed one.
  EXPECT_DOUBLE_EQ(rel.predict_for(86.0, 0.14).lambda_lower, kMinLambdaLower);
}

TEST(FitGradient, ThroughOriginLeastSquares) {
  const std::vector<double> n{100.0, 200.0, 400.0};
  const std::vector<double> x{14.0, 28.0, 56.0};
  EXPECT_NEAR(fit_gradient(n, x), 0.14, 1e-12);
}

TEST(FitGradient, RejectsBadInput) {
  EXPECT_THROW(fit_gradient({}, {}), std::invalid_argument);
  EXPECT_THROW(fit_gradient({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(fit_gradient({0.0}, {1.0}), std::invalid_argument);
}

TEST(Relationship2, PredictsNewServerFromMaxThroughput) {
  // Calibrate on two established servers, predict a third; ground truth
  // built with paper-like parameter scalings.
  const SyntheticServer f{186.0}, vf{320.0}, s_new{86.0};
  const std::vector<Relationship1> established{fit_synthetic(f),
                                               fit_synthetic(vf)};
  const Relationship2 rel2 = fit_relationship2(established);
  const Relationship1 derived = rel2.predict_for(86.0, s_new.gradient());

  EXPECT_NEAR(derived.max_throughput_rps, 86.0, 1e-12);
  // Upper equation: lambdaU = k / mx, with cU constant (-think).
  EXPECT_NEAR(derived.lambda_upper, 1.0 / 86.0, 0.05 / 86.0);
  EXPECT_NEAR(derived.c_upper, -7.0, 0.2);
  // Post-saturation prediction lands near ground truth.
  const double n = 2.0 * s_new.n_star();
  EXPECT_NEAR(derived.predict_metric(n), s_new.rt(n), 0.05 * s_new.rt(n));
}

TEST(Relationship2, NeedsTwoServers) {
  const SyntheticServer f{186.0};
  EXPECT_THROW(fit_relationship2({fit_synthetic(f)}), std::invalid_argument);
}

TEST(Relationship3, LinearExtrapolationAndScaling) {
  // Established server: 189 req/s at 0% buy, 158 at 25% (paper's values).
  const Relationship3 rel =
      fit_relationship3({0.0, 25.0}, {189.0, 158.0});
  EXPECT_NEAR(rel.established(0.0), 189.0, 1e-9);
  EXPECT_NEAR(rel.established(25.0), 158.0, 1e-9);
  EXPECT_NEAR(rel.established(12.5), 173.5, 1e-9);
  // New server with 86 req/s typical max: scaled by 86/189.
  EXPECT_NEAR(rel.predict(25.0, 86.0), 158.0 * 86.0 / 189.0, 1e-9);
  EXPECT_NEAR(rel.predict(0.0, 86.0), 86.0, 1e-9);
}

TEST(Relationship3, RejectsTooFewPoints) {
  EXPECT_THROW(fit_relationship3({0.0}, {189.0}), std::invalid_argument);
}

}  // namespace
}  // namespace epp::hydra
