#include "sim/trade/cluster.hpp"

#include <memory>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/resources.hpp"

namespace epp::sim::trade {
namespace {

constexpr double kMeanBuysPerSession = 10.0;

struct DbCall {
  double cpu_s;
  double disk_s;
};

class ClusterSimulation {
 public:
  explicit ClusterSimulation(const ClusterConfig& config)
      : config_(config),
        db_cpu_(engine_, config.db_speed, "db.cpu"),
        disk_(engine_, config.disk_speed, "db.disk"),
        db_slots_(config.db_concurrency,
                  config.servers.empty() ? 1 : config.servers.size()),
        metrics_(config.warmup_s),
        rng_(config.seed, 0xC1057E4) {
    metrics_class_.set_warmup(config.warmup_s);
    if (config.servers.empty())
      throw std::invalid_argument("Cluster: no application servers");
    if (config.classes.empty())
      throw std::invalid_argument("Cluster: no service classes");
    for (const ServerSpec& server : config.servers) {
      app_cpus_.push_back(
          std::make_unique<PsResource>(engine_, server.speed, server.name));
      app_slots_.push_back(std::make_unique<SlotPool>(server.concurrency, 1));
    }
    std::uint64_t next_id = 0;
    for (std::size_t ci = 0; ci < config.classes.size(); ++ci) {
      const ClusterClassSpec& cls = config.classes[ci];
      if (cls.clients_per_server.size() != config.servers.size())
        throw std::invalid_argument(
            "Cluster: allocation row for class '" + cls.name +
            "' does not match the number of servers");
      for (std::size_t si = 0; si < config.servers.size(); ++si) {
        for (std::size_t i = 0; i < cls.clients_per_server[si]; ++i) {
          clients_.push_back(std::make_unique<Client>());
          Client& c = *clients_.back();
          c.id = next_id++;
          c.class_index = ci;
          c.server_index = si;
          c.rng = rng_.spawn();
        }
      }
    }
  }

  ClusterRunResult run() {
    for (auto& c : clients_) think_then_issue(*c);
    const double end = config_.warmup_s + config_.measure_s;
    engine_.run_until(end);
    return collect(end);
  }

 private:
  struct Client {
    std::uint64_t id = 0;
    std::size_t class_index = 0;
    std::size_t server_index = 0;
    util::Rng rng{0};
    bool logged_in = false;
    std::uint64_t remaining_buys = 0;
    std::uint64_t portfolio = 0;
  };

  struct RequestContext {
    Client* client = nullptr;
    Operation op = Operation::kQuote;
    double issue_time = 0.0;
    double app_slice_s = 0.0;
    std::vector<DbCall> calls;
    std::size_t next_call = 0;
  };
  using Ctx = std::shared_ptr<RequestContext>;

  const ClusterClassSpec& spec_of(const Client& c) const {
    return config_.classes[c.class_index];
  }
  std::string bucket_of(const Client& c) const {
    return spec_of(c).name + "@" + std::to_string(c.server_index);
  }

  void think_then_issue(Client& c) {
    engine_.schedule_after(c.rng.exponential(spec_of(c).mean_think_time_s),
                           [this, &c] { issue(c); });
  }

  Operation next_operation(Client& c) {
    if (spec_of(c).type == UserType::kBrowse)
      return sample_browse_operation(c.rng);
    if (!c.logged_in) {
      c.logged_in = true;
      c.portfolio = 0;
      c.remaining_buys = c.rng.geometric_trials(1.0 / kMeanBuysPerSession);
      return Operation::kRegisterLogin;
    }
    if (c.remaining_buys > 0) {
      --c.remaining_buys;
      ++c.portfolio;
      return Operation::kBuy;
    }
    c.logged_in = false;
    return Operation::kLogoff;
  }

  void issue(Client& c) {
    auto ctx = std::make_shared<RequestContext>();
    ctx->client = &c;
    ctx->op = next_operation(c);
    ctx->issue_time = engine_.now();
    app_slots_[c.server_index]->acquire(0, [this, ctx] { admitted(ctx); });
  }

  void admitted(const Ctx& ctx) {
    const OperationProfile& prof = profile(ctx->op);
    Client& c = *ctx->client;
    const std::size_t op_calls = sample_db_calls(prof, c.rng);
    for (std::size_t i = 0; i < op_calls; ++i)
      ctx->calls.push_back(DbCall{prof.db_cpu_per_call, prof.disk_per_call});
    ctx->app_slice_s =
        prof.app_cpu_s / static_cast<double>(ctx->calls.size() + 1);
    do_slice(ctx);
  }

  void do_slice(const Ctx& ctx) {
    app_cpus_[ctx->client->server_index]->add_job(ctx->app_slice_s, [this, ctx] {
      if (ctx->next_call < ctx->calls.size()) {
        db_call(ctx);
      } else {
        finish(ctx);
      }
    });
  }

  void db_call(const Ctx& ctx) {
    // The DB tier keeps one FIFO queue per application server.
    db_slots_.acquire(ctx->client->server_index, [this, ctx] {
      const DbCall call = ctx->calls[ctx->next_call];
      db_cpu_.add_job(call.cpu_s, [this, ctx, disk_s = call.disk_s] {
        disk_.add_job(disk_s, [this, ctx] {
          db_slots_.release();
          ++ctx->next_call;
          do_slice(ctx);
        });
      });
    });
  }

  void finish(const Ctx& ctx) {
    Client& c = *ctx->client;
    app_slots_[c.server_index]->release();
    metrics_.record(bucket_of(c), ctx->issue_time, engine_.now());
    metrics_class_.record(spec_of(c).name, ctx->issue_time, engine_.now());
    think_then_issue(c);
  }

  ClusterRunResult collect(double end) const {
    ClusterRunResult out;
    out.total_throughput_rps = metrics_class_.throughput(end);
    out.db_cpu_utilization = db_cpu_.utilization(end);
    out.disk_utilization = disk_.utilization(end);
    for (const auto& cpu : app_cpus_)
      out.app_cpu_utilization.push_back(cpu->utilization(end));
    for (const std::string& bucket : metrics_.service_classes()) {
      ClusterClassResult r;
      r.completions = metrics_.completions(bucket);
      r.mean_rt_s = metrics_.mean_response_time(bucket);
      r.p90_rt_s = metrics_.response_time_quantile(bucket, 0.90);
      out.per_bucket[bucket] = r;
    }
    for (const std::string& name : metrics_class_.service_classes()) {
      ClusterClassResult r;
      r.completions = metrics_class_.completions(name);
      r.mean_rt_s = metrics_class_.mean_response_time(name);
      r.p90_rt_s = metrics_class_.response_time_quantile(name, 0.90);
      out.per_class[name] = r;
    }
    return out;
  }

  ClusterConfig config_;
  Engine engine_;
  std::vector<std::unique_ptr<PsResource>> app_cpus_;
  std::vector<std::unique_ptr<SlotPool>> app_slots_;
  PsResource db_cpu_;
  FifoResource disk_;
  SlotPool db_slots_;
  MetricsCollector metrics_;        // per (class, server) bucket
  MetricsCollector metrics_class_;  // per class (warmup set in constructor)
  util::Rng rng_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace

ClusterRunResult run_cluster(const ClusterConfig& config) {
  ClusterSimulation sim(config);
  return sim.run();
}

}  // namespace epp::sim::trade
