// Batch prediction engine: a facade over the three calibrated predictors
// (historical / layered queuing / hybrid) that evaluates vectors of
// prediction requests concurrently on epp::util::ThreadPool and memoizes
// results in a sharded LRU PredictionCache.
//
// The engine exists for the paper's capacity-planning workload: a
// resource manager comparing candidate servers issues a full client-load
// x buy-mix x method grid of predictions per decision, most of which
// repeat across decisions. Requests are pure once the predictors are
// calibrated, so each (method, server, quantized workload) triple is
// computed once and served from the cache afterwards.
//
// Quantization contract: a request is evaluated *at its quantized
// workload* (client counts snapped to quantum_clients, think time to
// quantum_think_s), which is exactly the cache key — so a cache hit is
// bit-identical to the fresh computation it memoizes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "core/trade_model.hpp"
#include "svc/prediction_cache.hpp"
#include "util/thread_pool.hpp"

namespace epp::svc {

/// One cell of a prediction sweep: which method to ask, about which
/// server, under which workload.
struct PredictionRequest {
  Method method = Method::kHistorical;
  std::string server;
  core::WorkloadSpec workload;
};

struct PredictionResult {
  double mean_rt_s = 0.0;
  double throughput_rps = 0.0;
  bool cached = false;  // answered from the memoization cache
};

struct BatchOptions {
  std::size_t cache_capacity_per_shard = 4096;
  std::size_t cache_shards = 16;
  /// Cache-key grid: client counts snap to the nearest multiple of
  /// quantum_clients, think times to quantum_think_s. Must be positive.
  double quantum_clients = 1.0;
  double quantum_think_s = 0.01;
};

class BatchPredictor {
 public:
  /// Non-owning: the predictors must outlive the engine. Pass nullptr for
  /// methods that are not calibrated; requesting one throws
  /// std::invalid_argument.
  BatchPredictor(const core::Predictor* historical, const core::Predictor* lqn,
                 const core::Predictor* hybrid, BatchOptions options = {});

  /// Single cache-aware evaluation. Thread-safe.
  PredictionResult predict(const PredictionRequest& request) const;

  /// Evaluate every request — fanned out on `pool` when given, serially
  /// otherwise. Results align with the input order; the first exception
  /// from any request is rethrown.
  std::vector<PredictionResult> predict_batch(
      const std::vector<PredictionRequest>& requests,
      util::ThreadPool* pool = nullptr) const;

  /// The workload a request is actually evaluated at (the cache-key grid).
  core::WorkloadSpec quantized(const core::WorkloadSpec& workload) const;

  /// The underlying predictor for a method; throws std::invalid_argument
  /// when that method was not supplied.
  const core::Predictor& predictor_for(Method method) const;

  CacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

 private:
  CacheKey key_for(const PredictionRequest& request) const;

  const core::Predictor* historical_;
  const core::Predictor* lqn_;
  const core::Predictor* hybrid_;
  BatchOptions options_;
  mutable PredictionCache cache_;
};

}  // namespace epp::svc
