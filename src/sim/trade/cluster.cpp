#include "sim/trade/cluster.hpp"

#include <memory>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/resources.hpp"

namespace epp::sim::trade {
namespace {

constexpr double kMeanBuysPerSession = 10.0;

// Same struct-of-arrays layout as the single-server testbed (see
// testbed.cpp): client state lives in parallel pool vectors, request
// state in a recycled slab, and think timers go through the engine's raw
// typed dispatch — the steady-state path allocates nothing.
class ClusterSimulation {
 public:
  explicit ClusterSimulation(const ClusterConfig& config)
      : config_(config),
        db_cpu_(engine_, config.db_speed, "db.cpu"),
        disk_(engine_, config.disk_speed, "db.disk"),
        db_slots_(config.db_concurrency,
                  config.servers.empty() ? 1 : config.servers.size()),
        metrics_(config.warmup_s),
        rng_(config.seed, 0xC1057E4) {
    metrics_class_.set_warmup(config.warmup_s);
    if (config.servers.empty())
      throw std::invalid_argument("Cluster: no application servers");
    if (config.classes.empty())
      throw std::invalid_argument("Cluster: no service classes");
    for (const ServerSpec& server : config.servers) {
      app_cpus_.push_back(
          std::make_unique<PsResource>(engine_, server.speed, server.name));
      app_slots_.push_back(std::make_unique<SlotPool>(server.concurrency, 1));
    }
    std::size_t total = 0;
    for (std::size_t ci = 0; ci < config.classes.size(); ++ci) {
      const ClusterClassSpec& cls = config.classes[ci];
      if (cls.clients_per_server.size() != config.servers.size())
        throw std::invalid_argument(
            "Cluster: allocation row for class '" + cls.name +
            "' does not match the number of servers");
      for (const std::size_t n : cls.clients_per_server) total += n;
    }
    client_class_.reserve(total);
    client_server_.reserve(total);
    client_rng_.reserve(total);
    logged_in_.reserve(total);
    remaining_buys_.reserve(total);
    portfolio_.reserve(total);
    for (std::size_t ci = 0; ci < config.classes.size(); ++ci) {
      const ClusterClassSpec& cls = config.classes[ci];
      for (std::size_t si = 0; si < config.servers.size(); ++si) {
        if (cls.clients_per_server[si] == 0) continue;
        // Each populated (class, server) bucket registers two metric
        // handles so the per-completion path is lookup-free. Empty pairs
        // get no bucket at all, matching the lazy pre-refactor collector.
        const std::size_t bucket = bucket_handles_.size();
        bucket_handles_.push_back(
            metrics_.class_handle(cls.name + "@" + std::to_string(si)));
        class_handles_.push_back(metrics_class_.class_handle(cls.name));
        for (std::size_t i = 0; i < cls.clients_per_server[si]; ++i) {
          client_class_.push_back(static_cast<std::uint32_t>(ci));
          client_server_.push_back(static_cast<std::uint32_t>(si));
          client_bucket_.push_back(static_cast<std::uint32_t>(bucket));
          client_rng_.push_back(rng_.spawn());
          logged_in_.push_back(0);
          remaining_buys_.push_back(0);
          portfolio_.push_back(0);
        }
      }
    }
  }

  ClusterRunResult run() {
    for (std::uint32_t c = 0; c < client_class_.size(); ++c)
      think_then_issue(c);
    const double end = config_.warmup_s + config_.measure_s;
    engine_.run_until(end);
    return collect(end);
  }

 private:
  struct Request {
    double issue_time = 0.0;
    double app_slice_s = 0.0;
    double call_cpu_s = 0.0;
    double call_disk_s = 0.0;
    std::uint32_t client = 0;
    std::uint8_t total_calls = 0;
    std::uint8_t next_call = 0;
  };

  const ClusterClassSpec& spec_of(std::uint32_t c) const {
    return config_.classes[client_class_[c]];
  }

  std::uint32_t alloc_request() {
    if (free_requests_.empty()) {
      requests_.emplace_back();
      return static_cast<std::uint32_t>(requests_.size() - 1);
    }
    const std::uint32_t r = free_requests_.back();
    free_requests_.pop_back();
    requests_[r] = Request{};
    return r;
  }

  void free_request(std::uint32_t r) { free_requests_.push_back(r); }

  void think_then_issue(std::uint32_t c) {
    const double think =
        client_rng_[c].exponential(spec_of(c).mean_think_time_s);
    engine_.schedule_raw_after(think, &ClusterSimulation::think_fired, this, c);
  }

  static void think_fired(void* self, std::uint64_t client) {
    static_cast<ClusterSimulation*>(self)->issue(
        static_cast<std::uint32_t>(client));
  }

  Operation next_operation(std::uint32_t c) {
    if (spec_of(c).type == UserType::kBrowse)
      return sample_browse_operation(client_rng_[c]);
    if (!logged_in_[c]) {
      logged_in_[c] = 1;
      portfolio_[c] = 0;
      remaining_buys_[c] =
          client_rng_[c].geometric_trials(1.0 / kMeanBuysPerSession);
      return Operation::kRegisterLogin;
    }
    if (remaining_buys_[c] > 0) {
      --remaining_buys_[c];
      ++portfolio_[c];
      return Operation::kBuy;
    }
    logged_in_[c] = 0;
    return Operation::kLogoff;
  }

  void issue(std::uint32_t c) {
    const std::uint32_t r = alloc_request();
    Request& req = requests_[r];
    req.client = c;
    const Operation op = next_operation(c);
    req.issue_time = engine_.now();
    // There is no session cache here, so the call count can be sampled at
    // issue rather than admission: each client has one outstanding request
    // and its own rng, so the draw sequence per client is unchanged.
    const OperationProfile& prof = profile(op);
    const std::size_t op_calls = sample_db_calls(prof, client_rng_[c]);
    req.total_calls = static_cast<std::uint8_t>(op_calls);
    req.call_cpu_s = prof.db_cpu_per_call;
    req.call_disk_s = prof.disk_per_call;
    req.app_slice_s = prof.app_cpu_s / static_cast<double>(op_calls + 1);
    app_slots_[client_server_[c]]->acquire(0, [this, r] { do_slice(r); });
  }

  void do_slice(std::uint32_t r) {
    const std::uint32_t server = client_server_[requests_[r].client];
    app_cpus_[server]->add_job(requests_[r].app_slice_s, [this, r] {
      const Request& req = requests_[r];
      if (req.next_call < req.total_calls) {
        db_call(r);
      } else {
        finish(r);
      }
    });
  }

  void db_call(std::uint32_t r) {
    // The DB tier keeps one FIFO queue per application server.
    db_slots_.acquire(client_server_[requests_[r].client], [this, r] {
      db_cpu_.add_job(requests_[r].call_cpu_s, [this, r] {
        disk_.add_job(requests_[r].call_disk_s, [this, r] {
          db_slots_.release();
          ++requests_[r].next_call;
          do_slice(r);
        });
      });
    });
  }

  void finish(std::uint32_t r) {
    const Request req = requests_[r];
    const std::uint32_t c = req.client;
    app_slots_[client_server_[c]]->release();
    metrics_.record(bucket_handles_[client_bucket_[c]], req.issue_time,
                    engine_.now());
    metrics_class_.record(class_handles_[client_bucket_[c]], req.issue_time,
                          engine_.now());
    free_request(r);
    think_then_issue(c);
  }

  ClusterRunResult collect(double end) const {
    ClusterRunResult out;
    out.total_throughput_rps = metrics_class_.throughput(end);
    out.db_cpu_utilization = db_cpu_.utilization(end);
    out.disk_utilization = disk_.utilization(end);
    for (const auto& cpu : app_cpus_)
      out.app_cpu_utilization.push_back(cpu->utilization(end));
    for (const std::string& bucket : metrics_.service_classes()) {
      ClusterClassResult r;
      r.completions = metrics_.completions(bucket);
      r.mean_rt_s = metrics_.mean_response_time(bucket);
      r.p90_rt_s = metrics_.response_time_quantile(bucket, 0.90);
      out.per_bucket[bucket] = r;
    }
    for (const std::string& name : metrics_class_.service_classes()) {
      ClusterClassResult r;
      r.completions = metrics_class_.completions(name);
      r.mean_rt_s = metrics_class_.mean_response_time(name);
      r.p90_rt_s = metrics_class_.response_time_quantile(name, 0.90);
      out.per_class[name] = r;
    }
    return out;
  }

  ClusterConfig config_;
  Engine engine_;
  std::vector<std::unique_ptr<PsResource>> app_cpus_;
  std::vector<std::unique_ptr<SlotPool>> app_slots_;
  PsResource db_cpu_;
  FifoResource disk_;
  SlotPool db_slots_;
  MetricsCollector metrics_;        // per (class, server) bucket
  MetricsCollector metrics_class_;  // per class (warmup set in constructor)
  util::Rng rng_;

  // Client pool (SoA), filled in (class, server) allocation order so rng
  // spawn order matches the pre-refactor per-client construction.
  std::vector<std::uint32_t> client_class_;
  std::vector<std::uint32_t> client_server_;
  std::vector<std::uint32_t> client_bucket_;  // index into bucket_handles_
  std::vector<util::Rng> client_rng_;
  std::vector<std::uint8_t> logged_in_;
  std::vector<std::uint64_t> remaining_buys_;
  std::vector<std::uint64_t> portfolio_;
  std::vector<std::size_t> bucket_handles_;  // per (class, server)
  std::vector<std::size_t> class_handles_;   // parallel to bucket_handles_

  std::vector<Request> requests_;
  std::vector<std::uint32_t> free_requests_;
};

}  // namespace

ClusterRunResult run_cluster(const ClusterConfig& config) {
  ClusterSimulation sim(config);
  return sim.run();
}

}  // namespace epp::sim::trade
