#include "sim/trade/testbed.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/fluid.hpp"
#include "util/annotations.hpp"
#include "sim/replicate.hpp"

namespace epp::sim::trade {

ServerSpec app_serv_s() { return {"AppServS", 86.0 / 186.0, 50, false}; }
ServerSpec app_serv_f() { return {"AppServF", 1.0, 50, true}; }
ServerSpec app_serv_vf() { return {"AppServVF", 320.0 / 186.0, 50, true}; }

namespace {

/// Mean buy requests per buy-user session before logoff.
constexpr double kMeanBuysPerSession = 10.0;

// The simulation keeps client state in a struct-of-arrays pool and
// request state in a recycled slab, so the steady-state path performs no
// heap allocation: timers go through the engine's raw typed dispatch,
// and every resource callback captures only (this, index) — inside
// std::function's small-buffer optimisation.
class Simulation {
 public:
  explicit Simulation(const TestbedConfig& config)
      : config_(config),
        app_cpu_(engine_, config.server.speed, config.server.name + ".cpu"),
        db_cpu_(engine_, config.db_speed, "db.cpu"),
        disk_(engine_, config.disk_speed, "db.disk"),
        app_slots_(config.server.concurrency, 1),
        db_slots_(config.db_concurrency, 1),
        cache_(config.cache ? config.cache->capacity_bytes : 0),
        metrics_(config.warmup_s),
        rng_(config.seed, 0x7E57BED) {
    if (config.classes.empty())
      throw std::invalid_argument("Testbed: no service classes");
    std::size_t closed_total = 0;
    for (const auto& spec : config.classes)
      if (spec.open_arrival_rps <= 0.0) closed_total += spec.clients;
    reserve_clients(closed_total + config.classes.size());
    for (std::size_t ci = 0; ci < config_.classes.size(); ++ci) {
      const auto& spec = config_.classes[ci];
      class_handles_.push_back(metrics_.class_handle(spec.name));
      if (spec.open_arrival_rps > 0.0) {
        // Open stream: one generator "client" supplies rng and operation
        // state; its pool slot also keys the session-cache entry.
        generators_.push_back(add_client(ci));
        continue;
      }
      class_begin_.push_back(closed_.size());
      for (std::size_t i = 0; i < spec.clients; ++i)
        closed_.push_back(add_client(ci));
      class_end_.push_back(closed_.size());
    }
  }

  RunResult run(bool keep_samples) {
    arm_initial_thinks();
    for (const std::uint32_t g : generators_) schedule_open_arrival(g);
    const double end = config_.warmup_s + config_.measure_s;
    engine_.run_until(end);
    return collect(end, keep_samples);
  }

 private:
  // ---- struct-of-arrays client pool ---------------------------------
  void reserve_clients(std::size_t n) {
    client_class_.reserve(n);
    client_rng_.reserve(n);
    logged_in_.reserve(n);
    remaining_buys_.reserve(n);
    portfolio_.reserve(n);
  }

  std::uint32_t add_client(std::size_t class_index) {
    const auto id = static_cast<std::uint32_t>(client_class_.size());
    client_class_.push_back(static_cast<std::uint32_t>(class_index));
    client_rng_.push_back(rng_.spawn());
    logged_in_.push_back(0);
    remaining_buys_.push_back(0);
    portfolio_.push_back(0);
    return id;
  }

  const ServiceClassSpec& spec_of(std::uint32_t c) const {
    return config_.classes[client_class_[c]];
  }

  // ---- recycled request slab ----------------------------------------
  struct Request {
    double issue_time = 0.0;
    double app_slice_s = 0.0;
    double call_cpu_s = 0.0;   // per regular DB call
    double call_disk_s = 0.0;
    double fetch_cpu_s = 0.0;  // session fetch, charged as call 0
    double fetch_disk_s = 0.0;
    std::uint32_t client = 0;
    Operation op = Operation::kQuote;
    std::uint8_t total_calls = 0;
    std::uint8_t next_call = 0;
    std::uint8_t has_fetch = 0;
    std::uint8_t open_request = 0;  // from a Poisson stream, no think cycle
  };

  std::uint32_t alloc_request() {
    if (free_requests_.empty()) {
      requests_.emplace_back();
      return static_cast<std::uint32_t>(requests_.size() - 1);
    }
    const std::uint32_t r = free_requests_.back();
    free_requests_.pop_back();
    requests_[r] = Request{};
    return r;
  }

  void free_request(std::uint32_t r) { free_requests_.push_back(r); }

  // ---- client behaviour ---------------------------------------------
  Operation next_operation(std::uint32_t c) {
    if (spec_of(c).type == UserType::kBrowse)
      return sample_browse_operation(client_rng_[c]);
    if (!logged_in_[c]) {
      logged_in_[c] = 1;
      portfolio_[c] = 0;
      remaining_buys_[c] =
          client_rng_[c].geometric_trials(1.0 / kMeanBuysPerSession);
      return Operation::kRegisterLogin;
    }
    if (remaining_buys_[c] > 0) {
      --remaining_buys_[c];
      ++portfolio_[c];
      return Operation::kBuy;
    }
    logged_in_[c] = 0;
    return Operation::kLogoff;
  }

  std::uint64_t session_bytes(std::uint32_t c) const {
    const CacheConfig& cc = *config_.cache;
    if (spec_of(c).type == UserType::kBrowse) return cc.browse_session_bytes;
    return cc.buy_session_base_bytes + cc.per_holding_bytes * portfolio_[c];
  }

  /// Arm every closed client's first think timer. The delays are drawn
  /// in one bulk pass per class (util::Rng::fill_exponential) from a
  /// dedicated arrival stream, then scheduled via raw dispatch.
  void arm_initial_thinks() {
    util::Rng arrivals = rng_.spawn();
    std::vector<double> thinks(closed_.size());
    std::size_t span = 0;
    for (std::size_t ci = 0, k = 0; ci < config_.classes.size(); ++ci) {
      const auto& spec = config_.classes[ci];
      if (spec.open_arrival_rps > 0.0) continue;
      const std::size_t begin = class_begin_[k];
      const std::size_t end = class_end_[k];
      ++k;
      arrivals.fill_exponential(spec.mean_think_time_s, thinks.data() + begin,
                                end - begin);
      span = end;
    }
    for (std::size_t i = 0; i < span; ++i)
      engine_.schedule_raw_at(thinks[i], &Simulation::think_fired, this,
                              closed_[i]);
  }

  EPP_HOT_BEGIN(request_path);

  static void think_fired(void* self, std::uint64_t client) {
    static_cast<Simulation*>(self)->issue(static_cast<std::uint32_t>(client));
  }

  static void open_arrival_fired(void* self, std::uint64_t generator) {
    auto& sim = *static_cast<Simulation*>(self);
    const auto g = static_cast<std::uint32_t>(generator);
    const std::uint32_t r = sim.alloc_request();
    Request& req = sim.requests_[r];
    req.client = g;
    req.op = sim.next_operation(g);
    req.issue_time = sim.engine_.now();
    req.open_request = 1;
    sim.app_slots_.acquire(0, [self, r] {
      static_cast<Simulation*>(self)->admitted(r);
    });
    sim.schedule_open_arrival(g);
  }

  void issue(std::uint32_t c) {
    const std::uint32_t r = alloc_request();
    Request& req = requests_[r];
    req.client = c;
    req.op = next_operation(c);
    req.issue_time = engine_.now();
    app_slots_.acquire(0, [this, r] { admitted(r); });
  }

  void schedule_open_arrival(std::uint32_t g) {
    const double rate = spec_of(g).open_arrival_rps;
    engine_.schedule_raw_after(client_rng_[g].exponential(1.0 / rate),
                               &Simulation::open_arrival_fired, this, g);
  }

  void admitted(std::uint32_t r) {
    Request& req = requests_[r];
    const OperationProfile& prof = profile(req.op);
    const std::uint32_t c = req.client;
    // Session-cache lookup happens when processing starts; a miss costs an
    // extra DB call to read the session before the operation's own calls.
    if (config_.cache && cache_.enabled()) {
      if (req.op == Operation::kLogoff) {
        cache_.invalidate(c);
      } else if (!cache_.access(c, session_bytes(c))) {
        req.has_fetch = 1;
        req.fetch_cpu_s = config_.cache->session_fetch_db_cpu_s;
        req.fetch_disk_s = config_.cache->session_fetch_disk_s;
      }
    }
    const std::size_t op_calls = sample_db_calls(prof, client_rng_[c]);
    req.total_calls = static_cast<std::uint8_t>(op_calls + req.has_fetch);
    req.call_cpu_s = prof.db_cpu_per_call;
    req.call_disk_s = prof.disk_per_call;
    req.app_slice_s = prof.app_cpu_s / static_cast<double>(req.total_calls + 1);
    do_slice(r);
  }

  void do_slice(std::uint32_t r) {
    app_cpu_.add_job(requests_[r].app_slice_s, [this, r] {
      const Request& req = requests_[r];
      if (req.next_call < req.total_calls) {
        db_call(r);
      } else {
        finish(r);
      }
    });
  }

  EPP_HOT_END(request_path);

  void db_call(std::uint32_t r) {
    if (requests_[r].issue_time >= config_.warmup_s) ++measured_db_calls_;
    db_slots_.acquire(0, [this, r] {
      const Request& req = requests_[r];
      const bool fetch = req.has_fetch && req.next_call == 0;
      db_cpu_.add_job(fetch ? req.fetch_cpu_s : req.call_cpu_s, [this, r] {
        const Request& inner = requests_[r];
        const bool f = inner.has_fetch && inner.next_call == 0;
        disk_.add_job(f ? inner.fetch_disk_s : inner.call_disk_s, [this, r] {
          db_slots_.release();
          ++requests_[r].next_call;
          do_slice(r);
        });
      });
    });
  }

  void finish(std::uint32_t r) {
    app_slots_.release();
    const Request req = requests_[r];
    const std::uint32_t c = req.client;
    metrics_.record(class_handles_[client_class_[c]], req.issue_time,
                    engine_.now());
    if (req.issue_time >= config_.warmup_s) {
      ++measured_requests_;
      if (req.op == Operation::kBuy) ++measured_buy_requests_;
    }
    free_request(r);
    if (!req.open_request) {
      const double think =
          client_rng_[c].exponential(spec_of(c).mean_think_time_s);
      engine_.schedule_raw_after(think, &Simulation::think_fired, this, c);
    }
  }

  RunResult collect(double end, bool keep_samples) const {
    RunResult out;
    out.mean_rt_s = metrics_.mean_response_time();
    out.p90_rt_s = metrics_.response_time_quantile(0.90);
    out.throughput_rps = metrics_.throughput(end);
    out.app_cpu_utilization = app_cpu_.utilization(end);
    out.db_cpu_utilization = db_cpu_.utilization(end);
    out.disk_utilization = disk_.utilization(end);
    out.cache_miss_ratio = cache_.miss_ratio();
    out.buy_request_fraction =
        measured_requests_ == 0
            ? 0.0
            : static_cast<double>(measured_buy_requests_) /
                  static_cast<double>(measured_requests_);
    out.db_calls_per_request =
        measured_requests_ == 0
            ? 0.0
            : static_cast<double>(measured_db_calls_) /
                  static_cast<double>(measured_requests_);
    for (const auto& spec : config_.classes) {
      ClassResult cr;
      cr.completions = metrics_.completions(spec.name);
      cr.mean_rt_s = metrics_.mean_response_time(spec.name);
      cr.p90_rt_s = metrics_.response_time_quantile(spec.name, 0.90);
      cr.throughput_rps = metrics_.throughput(spec.name, end);
      out.per_class[spec.name] = cr;
    }
    if (keep_samples) {
      out.rt_samples_s.reserve(metrics_.total_completions());
      for (const auto& name : metrics_.service_classes())
        for (double s : metrics_.samples(name).samples())
          out.rt_samples_s.push_back(s);
    }
    return out;
  }

  TestbedConfig config_;
  Engine engine_;
  PsResource app_cpu_;
  PsResource db_cpu_;
  FifoResource disk_;
  SlotPool app_slots_;
  SlotPool db_slots_;
  SessionCache cache_;
  MetricsCollector metrics_;
  util::Rng rng_;

  // Client pool (SoA; index == session-cache key). `closed_` lists the
  // closed-loop clients in creation order, `generators_` the open-stream
  // generators; `class_begin_/class_end_` bracket each closed class's
  // contiguous span inside `closed_` for bulk think-time sampling.
  std::vector<std::uint32_t> client_class_;
  std::vector<util::Rng> client_rng_;
  std::vector<std::uint8_t> logged_in_;
  std::vector<std::uint64_t> remaining_buys_;
  std::vector<std::uint64_t> portfolio_;
  std::vector<std::uint32_t> closed_;
  std::vector<std::uint32_t> generators_;
  std::vector<std::size_t> class_begin_;
  std::vector<std::size_t> class_end_;
  std::vector<std::size_t> class_handles_;  // metrics handle per class

  std::vector<Request> requests_;
  std::vector<std::uint32_t> free_requests_;

  std::uint64_t measured_requests_ = 0;
  std::uint64_t measured_buy_requests_ = 0;
  std::uint64_t measured_db_calls_ = 0;
};

}  // namespace

RunResult run_testbed(const TestbedConfig& config, bool keep_samples) {
  if (fluid_engages(config)) return run_testbed_fluid(config);
  Simulation sim(config);
  return sim.run(keep_samples);
}

TestbedConfig typical_workload(const ServerSpec& server, std::size_t clients,
                               std::uint64_t seed) {
  TestbedConfig config;
  config.server = server;
  config.classes.push_back({"browse", UserType::kBrowse, clients, 7.0});
  config.seed = seed;
  return config;
}

TestbedConfig mixed_workload(const ServerSpec& server, std::size_t clients,
                             double buy_client_fraction, std::uint64_t seed) {
  if (buy_client_fraction < 0.0 || buy_client_fraction > 1.0)
    throw std::invalid_argument("mixed_workload: fraction outside [0,1]");
  TestbedConfig config;
  config.server = server;
  const auto buyers =
      static_cast<std::size_t>(std::llround(buy_client_fraction * static_cast<double>(clients)));
  const std::size_t browsers = clients - buyers;
  if (browsers > 0)
    config.classes.push_back({"browse", UserType::kBrowse, browsers, 7.0});
  if (buyers > 0)
    config.classes.push_back({"buy", UserType::kBuy, buyers, 7.0});
  config.seed = seed;
  return config;
}

double measure_max_throughput(const ServerSpec& server,
                              double buy_client_fraction, std::uint64_t seed,
                              const MeasurementOptions& options) {
  // Drive the server well past saturation: throughput then plateaus at its
  // max (the paper's "after max throughput ... roughly constant").
  const double est_max_rps =
      186.0 * server.speed / (1.0 + 0.9 * buy_client_fraction);
  const auto clients = static_cast<std::size_t>(std::ceil(est_max_rps * 7.0 * 1.8));
  TestbedConfig config = mixed_workload(server, clients, buy_client_fraction, seed);
  config.warmup_s = 40.0;
  config.measure_s = 120.0;
  config.fluid_threshold = options.fluid_threshold;
  if (options.replications <= 1) return run_testbed(config).throughput_rps;
  ReplicationOptions rep;
  rep.replications = options.replications;
  rep.pool = options.pool;
  return run_replications(config, rep).summary.throughput_rps;
}

}  // namespace epp::sim::trade
