// Parameterized property sweeps over the layered solver: invariants that
// must hold at every population, mix and server speed.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trade_model.hpp"
#include "lqn/solver.hpp"

namespace epp::lqn {
namespace {

core::TradeCalibration cal() {
  core::TradeCalibration c;
  c.browse = {0.005376, 0.00083, 0.00040, 1.14};
  c.buy = {0.010455, 0.00161, 0.00050, 2.0};
  return c;
}

struct Scenario {
  double speed;     // server speed ratio
  double clients;   // total clients
  double buy_frac;  // buy share of clients
};

class SolverInvariants : public ::testing::TestWithParam<Scenario> {
 protected:
  SolveResult solve() const {
    const Scenario s = GetParam();
    core::ServerArch arch{"server", s.speed, 50, 20};
    core::WorkloadSpec w;
    w.buy_clients = s.clients * s.buy_frac;
    w.browse_clients = s.clients - w.buy_clients;
    w.think_time_s = 7.0;
    return LayeredSolver().solve(core::build_trade_lqn(cal(), arch, w));
  }
};

TEST_P(SolverInvariants, LittlesLawPerClass) {
  const SolveResult r = solve();
  for (const ClassPrediction& c : r.classes) {
    ASSERT_FALSE(c.open);
    EXPECT_NEAR(c.throughput_rps * (c.think_time_s + c.response_time_s),
                c.population, 1e-3 * c.population)
        << c.name;
  }
}

TEST_P(SolverInvariants, UtilizationsAreProbabilities) {
  const SolveResult r = solve();
  for (const auto& [name, u] : r.processor_utilization) {
    EXPECT_GE(u, 0.0) << name;
    EXPECT_LE(u, 1.0 + 1e-6) << name;
  }
  for (const auto& [name, u] : r.task_utilization) {
    EXPECT_GE(u, -1e-9) << name;
    EXPECT_LE(u, 1.0 + 1e-6) << name;
  }
}

TEST_P(SolverInvariants, ThroughputWithinBottleneckBound) {
  const Scenario s = GetParam();
  core::ServerArch arch{"server", s.speed, 50, 20};
  core::WorkloadSpec w;
  w.buy_clients = s.clients * s.buy_frac;
  w.browse_clients = s.clients - w.buy_clients;
  w.think_time_s = 7.0;
  const auto model = core::build_trade_lqn(cal(), arch, w);
  LayeredSolver solver;
  const SolveResult r = solver.solve(model);
  const double bound = solver.max_throughput_bound_rps(model);
  // The bound weights class demands by population share; at saturation the
  // realised mix shifts slightly toward the cheaper class, so allow a few
  // percent of headroom (it is an estimate, not a hard ceiling).
  EXPECT_LE(r.total_throughput_rps(), bound * 1.08);
}

TEST_P(SolverInvariants, SolvesQuicklyAndConverges) {
  const SolveResult r = solve();
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.solve_time_s, 2.0);
}

TEST_P(SolverInvariants, ResponseTimesPositiveAndOrdered) {
  const SolveResult r = solve();
  for (const ClassPrediction& c : r.classes) EXPECT_GT(c.response_time_s, 0.0);
  if (r.classes.size() == 2) {
    // Buy requests are heavier than browse at any load.
    EXPECT_GT(r.response_time_s("buy_clients"),
              r.response_time_s("browse_clients"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverInvariants,
    ::testing::Values(Scenario{0.46, 100, 0.0}, Scenario{0.46, 700, 0.25},
                      Scenario{1.0, 50, 0.5}, Scenario{1.0, 1316, 0.0},
                      Scenario{1.0, 2600, 0.1}, Scenario{1.72, 400, 0.0},
                      Scenario{1.72, 2262, 0.25}, Scenario{1.72, 6000, 0.0},
                      Scenario{3.0, 9000, 0.05}));

class PopulationMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PopulationMonotone, RtNonDecreasingThroughputBounded) {
  const double speed = GetParam();
  core::ServerArch arch{"server", speed, 50, 20};
  double prev_rt = 0.0, prev_x = 0.0;
  for (double n = 100.0; n <= 4000.0 * speed; n *= 1.6) {
    const auto model =
        core::build_trade_lqn(cal(), arch, {n, 0.0, 7.0});
    const SolveResult r = LayeredSolver().solve(model);
    const double rt = r.response_time_s("browse_clients");
    const double x = r.throughput_rps("browse_clients");
    EXPECT_GE(rt, prev_rt - 1e-9) << "speed=" << speed << " n=" << n;
    EXPECT_GE(x, prev_x - 1e-6) << "speed=" << speed << " n=" << n;
    prev_rt = rt;
    prev_x = x;
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, PopulationMonotone,
                         ::testing::Values(0.46, 1.0, 1.72, 2.5));

class ConvergenceCriterion : public ::testing::TestWithParam<double> {};

TEST_P(ConvergenceCriterion, LooserToleranceNeverDiverges) {
  SolverOptions options;
  options.convergence_tol_s = GetParam();
  const auto model =
      core::build_trade_lqn(cal(), core::arch_f(), {1500.0, 0.0, 7.0});
  const SolveResult r = LayeredSolver(options).solve(model);
  EXPECT_TRUE(r.converged);
  // Tight reference.
  const SolveResult tight = LayeredSolver().solve(model);
  EXPECT_NEAR(r.response_time_s("browse_clients"),
              tight.response_time_s("browse_clients"),
              10.0 * GetParam() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ConvergenceCriterion,
                         ::testing::Values(1e-7, 1e-4, 2e-2, 1e-1));

}  // namespace
}  // namespace epp::lqn
