// Corpus: EPP-HOT-005 — marker bookkeeping errors: an end with no
// begin, a label mismatch, a nested begin, and a begin that never
// closes.
#include "util/annotations.hpp"

namespace lint_corpus {

EPP_HOT_END(corpus_stray);

EPP_HOT_BEGIN(corpus_first);
EPP_HOT_END(corpus_second);

EPP_HOT_BEGIN(corpus_outer);
EPP_HOT_BEGIN(corpus_inner);
EPP_HOT_END(corpus_inner);

EPP_HOT_BEGIN(corpus_open);

}  // namespace lint_corpus
