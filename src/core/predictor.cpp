#include "core/predictor.hpp"

#include <cmath>
#include <stdexcept>

#include "core/errors.hpp"
#include "dist/rtdist.hpp"

namespace epp::core {
namespace {

WorkloadSpec workload_at(double clients, double buy_fraction, double think) {
  WorkloadSpec w;
  w.buy_clients = clients * buy_fraction;
  w.browse_clients = clients - w.buy_clients;
  w.think_time_s = think;
  return w;
}

}  // namespace

bool Predictor::predicts_saturated(const std::string& server,
                                   const WorkloadSpec& workload) const {
  const double max_tput =
      predict_max_throughput_rps(server, workload.buy_fraction());
  if (max_tput <= 0.0) return false;
  return predict_throughput_rps(server, workload) >= 0.985 * max_tput;
}

double Predictor::predict_percentile_rt_s(const std::string& server,
                                          const WorkloadSpec& workload,
                                          double p, double scale_b_s) const {
  const double mean = predict_mean_rt_s(server, workload);
  return dist::predict_percentile(mean, p, predicts_saturated(server, workload),
                                  scale_b_s);
}

CapacityResult Predictor::max_clients_for_goal(const std::string& server,
                                               double goal_s,
                                               double buy_fraction,
                                               double think_time_s) const {
  if (goal_s <= 0.0)
    throw std::invalid_argument("max_clients_for_goal: non-positive goal");
  CapacityResult result;
  auto rt_at = [&](double clients) {
    ++result.prediction_evaluations;
    try {
      return predict_mean_rt_s(
          server, workload_at(clients, buy_fraction, think_time_s));
    } catch (const SolverDivergedError& diverged) {
      // The bisection only needs to know which side of the goal a probe
      // lands on; a knee probe whose solve settled into a sub-percent
      // limit cycle answers that fine through its clamped estimate.
      if (diverged.clamped_rt_s > 0.0) return diverged.clamped_rt_s;
      throw;
    }
  };
  if (rt_at(1.0) > goal_s) return result;  // not even one client fits
  // Exponential bracketing then bisection (mean RT is monotone in load).
  double lo = 1.0, hi = 2.0;
  while (rt_at(hi) <= goal_s) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e9)
      throw std::domain_error("max_clients_for_goal: goal never violated");
  }
  while (hi - lo > 1.0) {
    const double mid = std::floor(0.5 * (lo + hi));
    (rt_at(mid) <= goal_s ? lo : hi) = mid;
  }
  result.max_clients = lo;
  return result;
}

}  // namespace epp::core
