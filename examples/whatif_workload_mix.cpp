// What-if analysis: how does the workload mix (share of buy users) change
// a server's capacity and response times? Sweeps the buy percentage and
// compares relationship-3 extrapolation against direct LQN solves —
// useful when deciding how much headroom a promotion campaign needs.
#include <iostream>

#include "core/evaluation.hpp"
#include "core/historical_predictor.hpp"
#include "core/lqn_predictor.hpp"
#include "hydra/relationships.hpp"
#include "sim/trade/testbed.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace epp;
  std::cout << "EPP what-if: workload mix vs capacity on the new AppServS\n\n";
  util::ThreadPool pool;

  const double max_s = sim::trade::measure_max_throughput(sim::trade::app_serv_s());
  const double max_f = sim::trade::measure_max_throughput(sim::trade::app_serv_f());
  const double max_vf = sim::trade::measure_max_throughput(sim::trade::app_serv_vf());
  const double max_f_25 =
      sim::trade::measure_max_throughput(sim::trade::app_serv_f(), 0.25, 11);
  const core::TradeCalibration calibration = core::calibrate_lqn_from_testbed(7, &pool);

  core::LqnPredictor lqn(calibration);
  for (const auto& arch : {core::arch_s(), core::arch_f(), core::arch_vf()})
    lqn.register_server(arch);

  const auto grad = core::measure_sweep(sim::trade::app_serv_f(), {300.0, 600.0},
                                        {}, &pool);
  const double m =
      hydra::fit_gradient({grad[0].clients, grad[1].clients},
                          {grad[0].throughput_rps, grad[1].throughput_rps});
  core::HistoricalPredictor historical(m);
  for (const auto& [name, spec, max] :
       {std::tuple{"AppServF", sim::trade::app_serv_f(), max_f},
        std::tuple{"AppServVF", sim::trade::app_serv_vf(), max_vf}}) {
    const double knee = max / m;
    historical.calibrate_established(
        name,
        core::to_data_points(
            core::measure_sweep(spec, {0.25 * knee, 0.6 * knee}, {}, &pool)),
        core::to_data_points(
            core::measure_sweep(spec, {1.25 * knee, 1.7 * knee}, {}, &pool)),
        max);
  }
  historical.register_new_server("AppServS", max_s);
  historical.calibrate_mix({0.0, 25.0}, {max_f, max_f_25});

  std::cout << "relationship 3 calibrated from AppServF: "
            << util::fmt(max_f, 1) << " req/s at 0% buy, "
            << util::fmt(max_f_25, 1) << " at 25%\n\n";

  util::Table table({"buy_pct", "hist_max_tput_rps", "lqn_max_tput_rps",
                     "hist_capacity_at_600ms", "lqn_capacity_at_600ms"});
  for (double buy : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40}) {
    const double h_max = historical.predict_max_throughput_rps("AppServS", buy);
    const double l_max = lqn.predict_max_throughput_rps("AppServS", buy);
    const auto h_cap = historical.max_clients_for_goal("AppServS", 0.6, buy);
    const auto l_cap = lqn.max_clients_for_goal("AppServS", 0.6, buy);
    table.add_row({util::fmt(100.0 * buy, 0), util::fmt(h_max, 1),
                   util::fmt(l_max, 1), util::fmt(h_cap.max_clients, 0),
                   util::fmt(l_cap.max_clients, 0)});
  }
  table.print(std::cout);
  std::cout << "\nBoth methods agree on the trend: every extra 5% of buy "
               "users costs a few percent of capacity (buy requests are "
               "~1.9x as expensive).\n";
  return 0;
}
