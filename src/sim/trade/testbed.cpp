#include "sim/trade/testbed.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace epp::sim::trade {

ServerSpec app_serv_s() { return {"AppServS", 86.0 / 186.0, 50, false}; }
ServerSpec app_serv_f() { return {"AppServF", 1.0, 50, true}; }
ServerSpec app_serv_vf() { return {"AppServVF", 320.0 / 186.0, 50, true}; }

namespace {

/// Mean buy requests per buy-user session before logoff.
constexpr double kMeanBuysPerSession = 10.0;

struct DbCall {
  double cpu_s;
  double disk_s;
};

class Simulation {
 public:
  explicit Simulation(const TestbedConfig& config)
      : config_(config),
        app_cpu_(engine_, config.server.speed, config.server.name + ".cpu"),
        db_cpu_(engine_, config.db_speed, "db.cpu"),
        disk_(engine_, config.disk_speed, "db.disk"),
        app_slots_(config.server.concurrency, 1),
        db_slots_(config.db_concurrency, 1),
        cache_(config.cache ? config.cache->capacity_bytes : 0),
        metrics_(config.warmup_s),
        rng_(config.seed, 0x7E57BED) {
    if (config.classes.empty())
      throw std::invalid_argument("Testbed: no service classes");
    std::uint64_t next_id = 0;
    for (std::size_t ci = 0; ci < config.classes.size(); ++ci) {
      const auto& spec = config_.classes[ci];
      if (spec.open_arrival_rps > 0.0) {
        // Open stream: one generator "client" supplies rng and operation
        // state; fresh virtual clients are minted per arrival for the
        // session-cache key space.
        open_generators_.push_back(std::make_unique<Client>());
        Client& c = *open_generators_.back();
        c.id = next_id++;
        c.class_index = ci;
        c.rng = rng_.spawn();
        continue;
      }
      for (std::size_t i = 0; i < spec.clients; ++i) {
        clients_.push_back(std::make_unique<Client>());
        Client& c = *clients_.back();
        c.id = next_id++;
        c.class_index = ci;
        c.rng = rng_.spawn();
      }
    }
  }

  RunResult run(bool keep_samples) {
    for (auto& c : clients_) think_then_issue(*c);
    for (auto& g : open_generators_) schedule_open_arrival(*g);
    const double end = config_.warmup_s + config_.measure_s;
    engine_.run_until(end);
    return collect(end, keep_samples);
  }

 private:
  struct Client {
    std::uint64_t id = 0;
    std::size_t class_index = 0;
    util::Rng rng{0};
    // Buy-user session state.
    bool logged_in = false;
    std::uint64_t remaining_buys = 0;
    std::uint64_t portfolio = 0;
  };

  struct RequestContext {
    Client* client = nullptr;
    Operation op = Operation::kQuote;
    double issue_time = 0.0;
    double app_slice_s = 0.0;
    std::vector<DbCall> calls;
    std::size_t next_call = 0;
    bool open_request = false;  // from a Poisson stream, no think cycle
  };
  using Ctx = std::shared_ptr<RequestContext>;

  const ServiceClassSpec& spec_of(const Client& c) const {
    return config_.classes[c.class_index];
  }

  void think_then_issue(Client& c) {
    const double think = c.rng.exponential(spec_of(c).mean_think_time_s);
    engine_.schedule_after(think, [this, &c] { issue(c); });
  }

  Operation next_operation(Client& c) {
    if (spec_of(c).type == UserType::kBrowse)
      return sample_browse_operation(c.rng);
    if (!c.logged_in) {
      c.logged_in = true;
      c.portfolio = 0;
      c.remaining_buys = c.rng.geometric_trials(1.0 / kMeanBuysPerSession);
      return Operation::kRegisterLogin;
    }
    if (c.remaining_buys > 0) {
      --c.remaining_buys;
      ++c.portfolio;
      return Operation::kBuy;
    }
    c.logged_in = false;
    return Operation::kLogoff;
  }

  std::uint64_t session_bytes(const Client& c) const {
    const CacheConfig& cc = *config_.cache;
    if (spec_of(c).type == UserType::kBrowse) return cc.browse_session_bytes;
    return cc.buy_session_base_bytes + cc.per_holding_bytes * c.portfolio;
  }

  void issue(Client& c) {
    auto ctx = std::make_shared<RequestContext>();
    ctx->client = &c;
    ctx->op = next_operation(c);
    ctx->issue_time = engine_.now();
    app_slots_.acquire(0, [this, ctx] { admitted(ctx); });
  }

  void schedule_open_arrival(Client& generator) {
    const double rate = spec_of(generator).open_arrival_rps;
    engine_.schedule_after(generator.rng.exponential(1.0 / rate),
                           [this, &generator] {
                             auto ctx = std::make_shared<RequestContext>();
                             ctx->client = &generator;
                             ctx->op = next_operation(generator);
                             ctx->issue_time = engine_.now();
                             ctx->open_request = true;
                             app_slots_.acquire(0, [this, ctx] { admitted(ctx); });
                             schedule_open_arrival(generator);
                           });
  }

  void admitted(const Ctx& ctx) {
    const OperationProfile& prof = profile(ctx->op);
    Client& c = *ctx->client;
    // Session-cache lookup happens when processing starts; a miss costs an
    // extra DB call to read the session before the operation's own calls.
    if (config_.cache && cache_.enabled()) {
      if (ctx->op == Operation::kLogoff) {
        cache_.invalidate(c.id);
      } else if (!cache_.access(c.id, session_bytes(c))) {
        ctx->calls.push_back(DbCall{config_.cache->session_fetch_db_cpu_s,
                                    config_.cache->session_fetch_disk_s});
      }
    }
    const std::size_t op_calls = sample_db_calls(prof, c.rng);
    for (std::size_t i = 0; i < op_calls; ++i)
      ctx->calls.push_back(DbCall{prof.db_cpu_per_call, prof.disk_per_call});
    ctx->app_slice_s =
        prof.app_cpu_s / static_cast<double>(ctx->calls.size() + 1);
    do_slice(ctx);
  }

  void do_slice(const Ctx& ctx) {
    app_cpu_.add_job(ctx->app_slice_s, [this, ctx] {
      if (ctx->next_call < ctx->calls.size()) {
        db_call(ctx);
      } else {
        finish(ctx);
      }
    });
  }

  void db_call(const Ctx& ctx) {
    if (ctx->issue_time >= config_.warmup_s) ++measured_db_calls_;
    db_slots_.acquire(0, [this, ctx] {
      const DbCall call = ctx->calls[ctx->next_call];
      db_cpu_.add_job(call.cpu_s, [this, ctx, disk_s = call.disk_s] {
        disk_.add_job(disk_s, [this, ctx] {
          db_slots_.release();
          ++ctx->next_call;
          do_slice(ctx);
        });
      });
    });
  }

  void finish(const Ctx& ctx) {
    app_slots_.release();
    Client& c = *ctx->client;
    metrics_.record(spec_of(c).name, ctx->issue_time, engine_.now());
    if (ctx->issue_time >= config_.warmup_s) {
      ++measured_requests_;
      if (ctx->op == Operation::kBuy) ++measured_buy_requests_;
    }
    if (!ctx->open_request) think_then_issue(c);
  }

  RunResult collect(double end, bool keep_samples) const {
    RunResult out;
    out.mean_rt_s = metrics_.mean_response_time();
    out.p90_rt_s = metrics_.response_time_quantile(0.90);
    out.throughput_rps = metrics_.throughput(end);
    out.app_cpu_utilization = app_cpu_.utilization(end);
    out.db_cpu_utilization = db_cpu_.utilization(end);
    out.disk_utilization = disk_.utilization(end);
    out.cache_miss_ratio = cache_.miss_ratio();
    out.buy_request_fraction =
        measured_requests_ == 0
            ? 0.0
            : static_cast<double>(measured_buy_requests_) /
                  static_cast<double>(measured_requests_);
    out.db_calls_per_request =
        measured_requests_ == 0
            ? 0.0
            : static_cast<double>(measured_db_calls_) /
                  static_cast<double>(measured_requests_);
    for (const auto& spec : config_.classes) {
      ClassResult cr;
      cr.completions = metrics_.completions(spec.name);
      cr.mean_rt_s = metrics_.mean_response_time(spec.name);
      cr.p90_rt_s = metrics_.response_time_quantile(spec.name, 0.90);
      cr.throughput_rps = metrics_.throughput(spec.name, end);
      out.per_class[spec.name] = cr;
    }
    if (keep_samples) {
      out.rt_samples_s.reserve(metrics_.total_completions());
      for (const auto& name : metrics_.service_classes())
        for (double s : metrics_.samples(name).samples())
          out.rt_samples_s.push_back(s);
    }
    return out;
  }

  TestbedConfig config_;
  Engine engine_;
  PsResource app_cpu_;
  PsResource db_cpu_;
  FifoResource disk_;
  SlotPool app_slots_;
  SlotPool db_slots_;
  SessionCache cache_;
  MetricsCollector metrics_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<Client>> open_generators_;
  std::uint64_t measured_requests_ = 0;
  std::uint64_t measured_buy_requests_ = 0;
  std::uint64_t measured_db_calls_ = 0;
};

}  // namespace

RunResult run_testbed(const TestbedConfig& config, bool keep_samples) {
  Simulation sim(config);
  return sim.run(keep_samples);
}

TestbedConfig typical_workload(const ServerSpec& server, std::size_t clients,
                               std::uint64_t seed) {
  TestbedConfig config;
  config.server = server;
  config.classes.push_back({"browse", UserType::kBrowse, clients, 7.0});
  config.seed = seed;
  return config;
}

TestbedConfig mixed_workload(const ServerSpec& server, std::size_t clients,
                             double buy_client_fraction, std::uint64_t seed) {
  if (buy_client_fraction < 0.0 || buy_client_fraction > 1.0)
    throw std::invalid_argument("mixed_workload: fraction outside [0,1]");
  TestbedConfig config;
  config.server = server;
  const auto buyers =
      static_cast<std::size_t>(std::llround(buy_client_fraction * static_cast<double>(clients)));
  const std::size_t browsers = clients - buyers;
  if (browsers > 0)
    config.classes.push_back({"browse", UserType::kBrowse, browsers, 7.0});
  if (buyers > 0)
    config.classes.push_back({"buy", UserType::kBuy, buyers, 7.0});
  config.seed = seed;
  return config;
}

double measure_max_throughput(const ServerSpec& server,
                              double buy_client_fraction, std::uint64_t seed) {
  // Drive the server well past saturation: throughput then plateaus at its
  // max (the paper's "after max throughput ... roughly constant").
  const double est_max_rps =
      186.0 * server.speed / (1.0 + 0.9 * buy_client_fraction);
  const auto clients = static_cast<std::size_t>(std::ceil(est_max_rps * 7.0 * 1.8));
  TestbedConfig config = mixed_workload(server, clients, buy_client_fraction, seed);
  config.warmup_s = 40.0;
  config.measure_s = 120.0;
  return run_testbed(config).throughput_rps;
}

}  // namespace epp::sim::trade
