// Micro-benchmark: cost of the artifact pre-flight gates (google-benchmark).
//
// Every serving tool front-loads a structural lint (tools/epp_lint rules)
// and, since the EPP-SEM family landed, a semantic verification pass —
// interval-arithmetic curve proofs, the LQN convergence pre-check and
// fallback-chain coverage. Both run once per tool invocation, before any
// simulation or solving, so the budget is generous but real:
//
//   budget: lint + verify of one bundle or model must stay well under
//   10 ms on a release build — invisible next to the ~1 s cold
//   calibration and the tens of milliseconds a single sweep pass costs.
//   The adaptive bisection in prove_at_least() is depth- and
//   node-budgeted precisely so a pathological artifact cannot turn the
//   gate into the bottleneck.
//
// BM_VerifyBundle_* cover the two interesting shapes: a clean bundle
// (proof succeeds everywhere — the worst case for bisection, which must
// subdivide until the interval bound tightens) and a defective one
// (refutation exits early at the first witness).
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>
#include <string>

#include "calib/bundle.hpp"
#include "lint/diagnostic.hpp"
#include "lint/lint.hpp"
#include "lint/verify.hpp"
#include "lqn/parser.hpp"

namespace {

using namespace epp;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string corpus(const std::string& relative) {
  return std::string(EPP_LINT_CORPUS_DIR) + "/" + relative;
}

void BM_LintBundleText(benchmark::State& state) {
  const std::string text = read_file(corpus("clean/trade.epp"));
  for (auto _ : state) {
    lint::Diagnostics diagnostics;
    lint::lint_bundle_text(text, "trade.epp", diagnostics);
    benchmark::DoNotOptimize(diagnostics);
  }
}
BENCHMARK(BM_LintBundleText);

void BM_VerifyBundle_Clean(benchmark::State& state) {
  // Parse once; the steady-state gate cost is the semantic pass itself.
  lint::Diagnostics parse_findings;
  calib::BundleParseInfo info;
  const calib::CalibrationBundle bundle = calib::parse_bundle_text(
      read_file(corpus("clean/trade.epp")), "trade.epp", parse_findings,
      &info);
  for (auto _ : state) {
    lint::Diagnostics diagnostics;
    lint::verify_bundle(bundle, "trade.epp", &info, lint::VerifyOptions{},
                        diagnostics);
    benchmark::DoNotOptimize(diagnostics);
  }
}
BENCHMARK(BM_VerifyBundle_Clean);

void BM_VerifyBundle_Defective(benchmark::State& state) {
  lint::Diagnostics parse_findings;
  calib::BundleParseInfo info;
  const calib::CalibrationBundle bundle = calib::parse_bundle_text(
      read_file(corpus("semantic/negative_upper.epp")), "negative_upper.epp",
      parse_findings, &info);
  for (auto _ : state) {
    lint::Diagnostics diagnostics;
    lint::verify_bundle(bundle, "negative_upper.epp", &info,
                        lint::VerifyOptions{}, diagnostics);
    benchmark::DoNotOptimize(diagnostics);
  }
}
BENCHMARK(BM_VerifyBundle_Defective);

void BM_VerifyArtifactFile_EndToEnd(benchmark::State& state) {
  // What a tool actually pays: read + sniff + lint + verify, per file.
  const std::string path = corpus("clean/trade.epp");
  for (auto _ : state) {
    lint::Diagnostics diagnostics;
    lint::verify_artifact_file(path, lint::VerifyOptions{}, diagnostics);
    benchmark::DoNotOptimize(diagnostics);
  }
}
BENCHMARK(BM_VerifyArtifactFile_EndToEnd);

void BM_VerifyLqnModel(benchmark::State& state) {
  // The convergence pre-check on the paper's testbed model (the priciest
  // model shape in tree: two processors, pools, surrogate recursion).
  const std::string text =
      read_file(std::string(EPP_MODELS_DIR) + "/trade.lqn");
  const lqn::Model model = lqn::parse_model(text);
  const lint::LqnSourceIndex index = lint::index_lqn_source(text);
  for (auto _ : state) {
    lint::Diagnostics diagnostics;
    lint::verify_lqn_model(model, "trade.lqn", diagnostics, &index);
    benchmark::DoNotOptimize(diagnostics);
  }
}
BENCHMARK(BM_VerifyLqnModel);

void BM_LintWorkloadGrid(benchmark::State& state) {
  // Grid linting scales with row count; synthesize state.range(0) rows.
  std::ostringstream grid;
  grid << "epp-workloads v1\n";
  for (int i = 0; i < state.range(0); ++i)
    grid << "workload " << (100 + i) << " " << (10 + i) << " 7\n";
  const std::string text = grid.str();
  for (auto _ : state) {
    lint::Diagnostics diagnostics;
    lint::lint_workload_grid_text(text, "grid.wkl", diagnostics);
    benchmark::DoNotOptimize(diagnostics);
  }
}
BENCHMARK(BM_LintWorkloadGrid)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
