#include "lqn/mva.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/cancellation.hpp"

namespace epp::lqn {

void ClosedNetwork::check() const {
  const std::size_t c = num_classes();
  const std::size_t k = num_stations();
  if (c == 0 && open_classes.empty())
    throw std::invalid_argument("ClosedNetwork: no classes");
  if (k == 0) throw std::invalid_argument("ClosedNetwork: no stations");
  if (think_time_s.size() != c || demands.size() != c)
    throw std::invalid_argument("ClosedNetwork: per-class arrays mismatched");
  if (!class_names.empty() && class_names.size() != c)
    throw std::invalid_argument("ClosedNetwork: class_names size mismatched");
  if (!priority.empty() && priority.size() != c)
    throw std::invalid_argument("ClosedNetwork: priority size mismatched");
  for (std::size_t i = 0; i < c; ++i) {
    if (population[i] <= 0.0)
      throw std::invalid_argument("ClosedNetwork: non-positive population");
    if (think_time_s[i] < 0.0)
      throw std::invalid_argument("ClosedNetwork: negative think time");
    if (demands[i].size() != k)
      throw std::invalid_argument("ClosedNetwork: demand row mismatched");
    for (double d : demands[i])
      if (d < 0.0) throw std::invalid_argument("ClosedNetwork: negative demand");
  }
  for (const OpenClass& open : open_classes) {
    if (open.arrival_rps < 0.0)
      throw std::invalid_argument("ClosedNetwork: negative arrival rate");
    if (open.demands.size() != k)
      throw std::invalid_argument("ClosedNetwork: open demand row mismatched");
    for (double d : open.demands)
      if (d < 0.0)
        throw std::invalid_argument("ClosedNetwork: negative open demand");
  }
  for (const Station& s : stations)
    if (s.kind == StationKind::kMultiServer && s.servers == 0)
      throw std::invalid_argument("ClosedNetwork: zero-server station");
}

namespace {

/// Effective queueing/delay split for the Seidmann multiserver transform.
struct SplitDemand {
  double queueing;  // contended portion
  double delay;     // uncontended portion
};

SplitDemand split_demand(const Station& station, double demand) {
  switch (station.kind) {
    case StationKind::kDelay:
      return {0.0, demand};
    case StationKind::kQueueing:
      return {demand, 0.0};
    case StationKind::kMultiServer: {
      const double m = static_cast<double>(station.servers);
      return {demand / m, demand * (m - 1.0) / m};
    }
  }
  return {demand, 0.0};
}

/// Per-station utilisation contributed by the open classes (per server).
std::vector<double> open_utilization(const ClosedNetwork& network) {
  std::vector<double> u(network.num_stations(), 0.0);
  for (const OpenClass& open : network.open_classes)
    for (std::size_t s = 0; s < u.size(); ++s) {
      double load = open.arrival_rps * open.demands[s];
      if (network.stations[s].kind == StationKind::kMultiServer)
        load /= static_cast<double>(network.stations[s].servers);
      if (network.stations[s].kind != StationKind::kDelay) u[s] += load;
    }
  for (std::size_t s = 0; s < u.size(); ++s) {
    if (network.stations[s].kind == StationKind::kDelay) continue;
    if (u[s] >= 1.0)
      throw std::domain_error("MVA: open classes saturate station '" +
                              network.stations[s].name + "'");
  }
  return u;
}

void fill_utilization(const ClosedNetwork& network, MvaResult& result) {
  const std::size_t k = network.num_stations();
  result.station_utilization.assign(k, 0.0);
  for (std::size_t s = 0; s < k; ++s) {
    double u = 0.0;
    for (std::size_t c = 0; c < network.num_classes(); ++c)
      u += result.throughput_rps[c] * network.demands[c][s];
    for (const OpenClass& open : network.open_classes)
      u += open.arrival_rps * open.demands[s];
    if (network.stations[s].kind == StationKind::kMultiServer)
      u /= static_cast<double>(network.stations[s].servers);
    result.station_utilization[s] = u;
  }
}

/// Open-class response times given the closed classes' queue lengths.
void fill_open_responses(const ClosedNetwork& network,
                         const std::vector<double>& u_open,
                         MvaResult& result) {
  result.open_response_time_s.clear();
  for (const OpenClass& open : network.open_classes) {
    double r = 0.0;
    for (std::size_t s = 0; s < network.num_stations(); ++s) {
      const SplitDemand d = split_demand(network.stations[s], open.demands[s]);
      double q_closed = 0.0;
      for (std::size_t c = 0; c < network.num_classes(); ++c)
        q_closed += result.station_queue[c][s];
      r += d.delay + d.queueing * (1.0 + q_closed) / (1.0 - u_open[s]);
    }
    result.open_response_time_s.push_back(r);
  }
}

}  // namespace

MvaResult solve_exact_single_class(const ClosedNetwork& network) {
  network.check();
  if (network.num_classes() != 1)
    throw std::invalid_argument("solve_exact_single_class: needs one class");
  const double pop = network.population[0];
  const auto n_max = static_cast<long>(std::llround(pop));
  if (std::abs(pop - static_cast<double>(n_max)) > 1e-9 || n_max < 1)
    throw std::invalid_argument(
        "solve_exact_single_class: population must be a positive integer");

  const std::size_t k = network.num_stations();
  const std::vector<double> u_open = open_utilization(network);
  std::vector<double> queue(k, 0.0), response(k, 0.0);
  double x = 0.0;

  for (long n = 1; n <= n_max; ++n) {
    double total_r = 0.0;
    for (std::size_t s = 0; s < k; ++s) {
      const SplitDemand d = split_demand(network.stations[s], network.demands[0][s]);
      response[s] = d.queueing * (1.0 + queue[s]) / (1.0 - u_open[s]) + d.delay;
      total_r += response[s];
    }
    x = static_cast<double>(n) / (network.think_time_s[0] + total_r);
    for (std::size_t s = 0; s < k; ++s) queue[s] = x * response[s];
  }

  MvaResult result;
  result.throughput_rps = {x};
  double total_r = 0.0;
  for (double r : response) total_r += r;
  result.response_time_s = {total_r};
  result.station_response_s = {response};
  result.station_queue = {queue};
  result.iterations = static_cast<int>(n_max);
  result.converged = true;
  fill_utilization(network, result);
  fill_open_responses(network, u_open, result);
  return result;
}

MvaResult solve_bard_schweitzer(const ClosedNetwork& network,
                                const MvaOptions& options) {
  network.check();
  const std::size_t nc = network.num_classes();
  const std::size_t k = network.num_stations();
  const std::vector<double> u_open = open_utilization(network);
  const bool has_priorities =
      !network.priority.empty() &&
      *std::max_element(network.priority.begin(), network.priority.end()) !=
          *std::min_element(network.priority.begin(), network.priority.end());
  const auto prio = [&](std::size_t c) {
    return network.priority.empty() ? 0 : network.priority[c];
  };

  // Initial guess: each class's population spread evenly over the stations
  // it actually visits.
  std::vector<std::vector<double>> queue(nc, std::vector<double>(k, 0.0));
  for (std::size_t c = 0; c < nc; ++c) {
    std::size_t visited = 0;
    for (std::size_t s = 0; s < k; ++s)
      if (network.demands[c][s] > 0.0) ++visited;
    if (visited == 0) continue;
    for (std::size_t s = 0; s < k; ++s)
      if (network.demands[c][s] > 0.0)
        queue[c][s] = network.population[c] / static_cast<double>(visited);
  }

  std::vector<std::vector<double>> response(nc, std::vector<double>(k, 0.0));
  std::vector<double> total_r(nc, 0.0), prev_total_r(nc, 0.0), x(nc, 0.0);

  // Cooperative cancellation: the fixed point is the solver's hot loop, so
  // a deadline-bound caller (the resilient serving layer) can abort it
  // mid-solve through the ambient token. Polled every 64 iterations — the
  // clock read is amortised to noise while a 50 ms deadline still cancels
  // within microseconds of expiring.
  const util::CancellationToken* cancel = util::current_cancellation();

  MvaResult result;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (cancel != nullptr && (iter & 63) == 0 && cancel->cancelled())
      throw util::Cancelled("MVA solve cancelled");
    for (std::size_t c = 0; c < nc; ++c) {
      total_r[c] = 0.0;
      const double n_c = network.population[c];
      const double self_factor = n_c >= 1.0 ? (n_c - 1.0) / n_c : 0.0;
      for (std::size_t s = 0; s < k; ++s) {
        const SplitDemand d =
            split_demand(network.stations[s], network.demands[c][s]);
        // Arrivals seen: own class (arrival-theorem scaled) plus classes of
        // the same or higher priority; strictly-higher classes additionally
        // shrink the station capacity (preemptive shadow server).
        double arrivals_seen = self_factor * queue[c][s];
        double u_higher = 0.0;
        for (std::size_t o = 0; o < nc; ++o) {
          if (o == c) continue;
          if (!has_priorities || prio(o) >= prio(c))
            arrivals_seen += queue[o][s];
          if (has_priorities && prio(o) > prio(c)) {
            double load = x[o] * network.demands[o][s];
            if (network.stations[s].kind == StationKind::kMultiServer)
              load /= static_cast<double>(network.stations[s].servers);
            u_higher += load;
          }
        }
        const double capacity =
            std::max(1e-9, 1.0 - u_open[s] - std::min(u_higher, 0.999));
        response[c][s] = d.queueing * (1.0 + arrivals_seen) / capacity + d.delay;
        total_r[c] += response[c][s];
      }
      x[c] = network.population[c] / (network.think_time_s[c] + total_r[c]);
    }
    for (std::size_t c = 0; c < nc; ++c)
      for (std::size_t s = 0; s < k; ++s) queue[c][s] = x[c] * response[c][s];

    double delta = 0.0;
    for (std::size_t c = 0; c < nc; ++c)
      delta = std::max(delta, std::abs(total_r[c] - prev_total_r[c]));
    prev_total_r = total_r;
    result.iterations = iter;
    if (delta < options.rt_tolerance_s) {
      result.converged = true;
      break;
    }
  }

  result.throughput_rps = x;
  result.response_time_s = total_r;
  result.station_response_s = response;
  result.station_queue = queue;
  fill_utilization(network, result);
  fill_open_responses(network, u_open, result);
  return result;
}

MvaResult solve_mva(const ClosedNetwork& network, const MvaOptions& options,
                    std::size_t exact_population_limit) {
  if (network.num_classes() == 1 && exact_population_limit > 0 &&
      network.priority.empty()) {
    const double pop = network.population[0];
    const double rounded = std::round(pop);
    if (std::abs(pop - rounded) < 1e-9 &&
        rounded <= static_cast<double>(exact_population_limit))
      return solve_exact_single_class(network);
  }
  return solve_bard_schweitzer(network, options);
}

}  // namespace epp::lqn
