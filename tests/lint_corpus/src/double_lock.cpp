// Corpus: EPP-CONC-002 — re-locking a non-recursive mutex already held
// by the same scope.
#include "util/annotations.hpp"
#include "util/lock_rank.hpp"

namespace lint_corpus {

inline epp::util::RankedMutex once{EPP_LOCK_RANK(30), "corpus.once"};

inline void relock() {
  const epp::util::MutexLock outer(once);
  const epp::util::MutexLock inner(once);
}

}  // namespace lint_corpus
