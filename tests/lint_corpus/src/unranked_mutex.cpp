// Corpus: EPP-CONC-008 — a plain std::mutex outside the rank order, and
// a RankedMutex whose initializer forgets the EPP_LOCK_RANK macro.
#include <mutex>

#include "util/lock_rank.hpp"

namespace lint_corpus {

inline std::mutex unranked;
inline epp::util::RankedMutex bare_rank{7, "corpus.bare"};

}  // namespace lint_corpus
