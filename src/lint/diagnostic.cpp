#include "lint/diagnostic.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace epp::lint {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";  // unreachable
}

Diagnostic& Diagnostics::add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
  return diagnostics_.back();
}

Diagnostic& Diagnostics::error(std::string rule, SourceLocation location,
                               std::string message, std::string hint) {
  return add({std::move(rule), Severity::kError, std::move(location),
              std::move(message), std::move(hint)});
}

Diagnostic& Diagnostics::warning(std::string rule, SourceLocation location,
                                 std::string message, std::string hint) {
  return add({std::move(rule), Severity::kWarning, std::move(location),
              std::move(message), std::move(hint)});
}

Diagnostic& Diagnostics::note(std::string rule, SourceLocation location,
                              std::string message, std::string hint) {
  return add({std::move(rule), Severity::kNote, std::move(location),
              std::move(message), std::move(hint)});
}

std::size_t Diagnostics::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& diagnostic : diagnostics_)
    if (diagnostic.severity == severity) ++n;
  return n;
}

const Diagnostic* Diagnostics::first_at_least(Severity severity) const {
  for (const Diagnostic& diagnostic : diagnostics_)
    if (diagnostic.severity >= severity) return &diagnostic;
  return nullptr;
}

void Diagnostics::sort_by_location() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.location.file != b.location.file)
                       return a.location.file < b.location.file;
                     if (a.location.line != b.location.line)
                       return a.location.line < b.location.line;
                     return a.rule < b.rule;
                   });
}

std::string fmt_value(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

int exit_code(const Diagnostics& diagnostics) {
  if (diagnostics.has_errors()) return 2;
  if (diagnostics.count(Severity::kWarning) > 0) return 1;
  return 0;
}

std::string render_text(const Diagnostics& diagnostics) {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics.all()) {
    if (!d.location.file.empty()) os << d.location.file << ':';
    if (d.location.line > 0) os << d.location.line << ':';
    if (!d.location.file.empty() || d.location.line > 0) os << ' ';
    os << severity_name(d.severity) << ": [" << d.rule << "] " << d.message
       << '\n';
    if (!d.hint.empty()) os << "    fix-it: " << d.hint << '\n';
  }
  return os.str();
}

namespace {

void append_json_string(std::ostringstream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]
             << kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string render_json(const Diagnostics& diagnostics) {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (const Diagnostic& d : diagnostics.all()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"file\": ";
    append_json_string(os, d.location.file);
    os << ", \"line\": " << d.location.line << ", \"severity\": \""
       << severity_name(d.severity) << "\", \"rule\": ";
    append_json_string(os, d.rule);
    os << ", \"message\": ";
    append_json_string(os, d.message);
    os << ", \"hint\": ";
    append_json_string(os, d.hint);
    os << '}';
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace epp::lint
