// The pre-refactor discrete-event engine, frozen verbatim (modulo the
// class name) as a reference implementation.
//
// It is NOT used by the simulator any more — sim::Engine (engine.hpp)
// replaced the shared_ptr/std::function binary heap with a slab-allocated
// event pool behind a calendar/ladder queue. This copy exists for two
// jobs only:
//
//   * bench/sim_engine_micro keeps an old-vs-new comparison point so the
//     perf trajectory in BENCH_sim.json stays anchored to the seed;
//   * tests/sim_engine_test drives both engines through identical
//     stochastic schedules and asserts bit-identical execution traces
//     (the "exact mode stays exact" guarantee of the refactor).
//
// Do not "fix" or optimise this file; it is the baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace epp::sim {

class LegacyEngine {
 public:
  using Callback = std::function<void()>;

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // tie-break so equal-time events run FIFO
    Callback fn;
    bool canceled = false;
  };
  using Handle = std::shared_ptr<Event>;

  double now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  Handle schedule_at(double time, Callback fn) {
    if (time < now_)
      throw std::invalid_argument("Engine::schedule_at: time in the past");
    auto event = std::make_shared<Event>();
    event->time = time;
    event->seq = next_seq_++;
    event->fn = std::move(fn);
    heap_.push(event);
    return event;
  }

  Handle schedule_after(double delay, Callback fn) {
    if (delay < 0.0)
      throw std::invalid_argument("Engine::schedule_after: negative delay");
    return schedule_at(now_ + delay, std::move(fn));
  }

  static void cancel(const Handle& handle) noexcept {
    if (handle) handle->canceled = true;
  }

  bool step() {
    while (!heap_.empty()) {
      Handle event = heap_.top();
      heap_.pop();
      if (event->canceled) continue;
      now_ = event->time;
      ++processed_;
      Callback fn = std::move(event->fn);
      fn();
      return true;
    }
    return false;
  }

  void run_until(double end_time) {
    while (!heap_.empty() && heap_.top()->time <= end_time) step();
    if (end_time > now_) now_ = end_time;
  }

  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Later {
    bool operator()(const Handle& a, const Handle& b) const noexcept {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Handle, std::vector<Handle>, Later> heap_;
};

}  // namespace epp::sim
