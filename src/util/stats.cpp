#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace epp::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::variance() const noexcept {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return acc / static_cast<double>(n - 1);
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleSet::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double prediction_accuracy_percent(double predicted, double actual) {
  if (actual == 0.0) return predicted == 0.0 ? 100.0 : 0.0;
  const double err = std::abs(predicted - actual) / std::abs(actual);
  return std::max(0.0, 100.0 * (1.0 - err));
}

double prediction_accuracy_percent(const std::vector<double>& predicted,
                                   const std::vector<double>& actual) {
  if (predicted.size() != actual.size())
    throw std::invalid_argument("prediction_accuracy_percent: size mismatch");
  if (predicted.empty()) return 100.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    acc += prediction_accuracy_percent(predicted[i], actual[i]);
  return acc / static_cast<double>(predicted.size());
}

}  // namespace epp::util
