#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/legacy_engine.hpp"
#include "util/rng.hpp"

namespace epp::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, EqualTimesRunFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    engine.schedule_at(1.0, [&, i] { order.push_back(i); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  Engine::Handle handle = engine.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(handle);
  engine.cancel(handle);
  engine.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(Engine, CancelIsIdempotentAndSafeOnStaleHandles) {
  Engine engine;
  int fired = 0;
  Engine::Handle first = engine.schedule_at(1.0, [&] { ++fired; });
  engine.cancel(first);
  engine.cancel(first);  // double cancel: no-op
  // The slot is reclaimed eagerly, so this schedule reuses it; the stale
  // handle's generation no longer matches and must not cancel it.
  Engine::Handle second = engine.schedule_at(2.0, [&] { ++fired; });
  engine.cancel(first);
  engine.run_all();
  EXPECT_EQ(fired, 1);
  engine.cancel(second);  // already fired: no-op
  engine.cancel(Engine::Handle{});  // empty handle: no-op
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] { ++count; });
  engine.schedule_at(2.0, [&] { ++count; });
  engine.schedule_at(3.0, [&] { ++count; });
  engine.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run_until(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

// Regression (pre-refactor bug): run_until used the raw queue head's time
// to decide whether to step, but step() skips canceled heads and executes
// the next live event wherever it is — so a canceled head inside the
// window let a live event far beyond end_time run. The loop is now driven
// by peek_live_time(), which never reports canceled events.
TEST(Engine, RunUntilIgnoresCanceledHeadBeforeLaterEvent) {
  Engine engine;
  bool late_ran = false;
  Engine::Handle canceled = engine.schedule_at(1.0, [] {});
  engine.schedule_at(20.0, [&] { late_ran = true; });
  engine.cancel(canceled);
  engine.run_until(10.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  engine.run_until(25.0);
  EXPECT_TRUE(late_ran);
}

TEST(Engine, PeekLiveTimeSkipsCanceledEvents) {
  Engine engine;
  EXPECT_EQ(engine.peek_live_time(), std::numeric_limits<double>::infinity());
  Engine::Handle early = engine.schedule_at(1.0, [] {});
  engine.schedule_at(5.0, [] {});
  EXPECT_DOUBLE_EQ(engine.peek_live_time(), 1.0);
  engine.cancel(early);
  EXPECT_DOUBLE_EQ(engine.peek_live_time(), 5.0);
  engine.run_all();
  EXPECT_EQ(engine.peek_live_time(), std::numeric_limits<double>::infinity());
}

TEST(Engine, PastSchedulingRejected) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run_all();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_at(std::nan(""), [] {}),
               std::invalid_argument);
  EXPECT_THROW(
      engine.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
      std::invalid_argument);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(engine.events_processed(), 100u);
}

TEST(Engine, RawDispatchCarriesContextAndArg) {
  Engine engine;
  std::vector<std::uint64_t> seen;
  const Engine::RawFn push = [](void* ctx, std::uint64_t arg) {
    static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(arg);
  };
  engine.schedule_raw_at(2.0, push, &seen, 7);
  engine.schedule_raw_at(1.0, push, &seen, 3);
  engine.schedule_raw_after(3.0, push, &seen, 9);
  engine.run_all();
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 7, 9}));
  EXPECT_EQ(engine.events_processed(), 3u);
}

// Satellite (b): canceled slots are reclaimed eagerly, so cancel-heavy
// workloads reuse the slab instead of growing it.
TEST(Engine, CanceledSlotsAreReusedWithoutGrowingTheSlab) {
  Engine engine;
  EXPECT_EQ(engine.pending(), 0u);
  std::vector<Engine::Handle> handles;
  for (int i = 0; i < 1000; ++i)
    handles.push_back(engine.schedule_at(1.0 + i, [] {}));
  EXPECT_EQ(engine.pending(), 1000u);
  const std::size_t capacity_before = engine.capacity();
  EXPECT_GE(capacity_before, 1000u);
  for (const Engine::Handle& h : handles) engine.cancel(h);
  EXPECT_EQ(engine.pending(), 0u);
  // Many cancel/reschedule rounds: capacity must not grow past the first
  // high-water mark because every canceled slot goes back on the free list.
  for (int round = 0; round < 20; ++round) {
    handles.clear();
    for (int i = 0; i < 1000; ++i)
      handles.push_back(engine.schedule_at(1.0 + i, [] {}));
    for (const Engine::Handle& h : handles) engine.cancel(h);
  }
  EXPECT_EQ(engine.capacity(), capacity_before);
  EXPECT_EQ(engine.pending(), 0u);
  engine.run_all();
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(Engine, PendingTracksLiveEvents) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  Engine::Handle h = engine.schedule_at(2.0, [] {});
  engine.schedule_at(3.0, [] {});
  EXPECT_EQ(engine.pending(), 3u);
  engine.cancel(h);
  EXPECT_EQ(engine.pending(), 2u);
  engine.step();
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_all();
  EXPECT_EQ(engine.pending(), 0u);
}

// The calendar queue's overflow ladder and year wrap: events spread over
// ten orders of magnitude of simulated time still run in order.
TEST(Engine, WidelySpacedTimesRunInOrder) {
  Engine engine;
  std::vector<double> fired;
  util::Rng rng(7, 7);
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i)
    times.push_back(rng.uniform() * std::pow(10.0, rng.uniform(0.0, 10.0)));
  for (const double t : times)
    engine.schedule_at(t, [&fired, &engine] { fired.push_back(engine.now()); });
  engine.run_all();
  ASSERT_EQ(fired.size(), times.size());
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

// Satellite (c): one million equal-time events preserve global FIFO order.
TEST(Engine, MillionEqualTimeEventsRunFifo) {
  Engine engine;
  constexpr std::uint64_t kEvents = 1'000'000;
  std::vector<std::uint64_t> order;
  order.reserve(kEvents);
  const Engine::RawFn push = [](void* ctx, std::uint64_t arg) {
    static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(arg);
  };
  // Two interleaved time values so the FIFO guarantee is exercised within
  // a bucket heap, not just by insertion order.
  for (std::uint64_t i = 0; i < kEvents; ++i)
    engine.schedule_raw_at(i % 2 == 0 ? 1.0 : 2.0, push, &order, i);
  engine.run_all();
  ASSERT_EQ(order.size(), kEvents);
  for (std::uint64_t i = 1; i < kEvents / 2; ++i) {
    ASSERT_EQ(order[i], order[i - 1] + 2);           // all the t=1.0 events
    ASSERT_EQ(order[kEvents / 2 + i],                // then the t=2.0 events
              order[kEvents / 2 + i - 1] + 2);
  }
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order[kEvents / 2], 1u);
}

// Satellite (c): the new engine's execution trace is bit-identical to the
// frozen pre-refactor engine's under an adversarial stochastic schedule —
// random times (with deliberate ties), nested scheduling, and cancels.
TEST(Engine, TraceMatchesLegacyEngineBitForBit) {
  struct Trace {
    std::vector<double> times;
    std::vector<std::uint64_t> ids;
  };
  // Quantized times manufacture equal-time collisions; every third event
  // schedules a follow-up and every seventh pre-scheduled event is
  // canceled before the run.
  const auto drive = [](auto& engine, auto cancel_fn) {
    Trace trace;
    util::Rng rng(12345, 99);
    std::uint64_t next_id = 0;
    std::function<void(std::uint64_t)> fire = [&](std::uint64_t id) {
      trace.times.push_back(engine.now());
      trace.ids.push_back(id);
      if (id % 3 == 0) {
        const double delay = std::floor(rng.uniform() * 50.0) * 0.25;
        const std::uint64_t child = 100000 + id;
        engine.schedule_after(delay, [&fire, child] { fire(child); });
      }
    };
    std::vector<decltype(engine.schedule_at(0.0, Engine::Callback{}))> handles;
    for (int i = 0; i < 4000; ++i) {
      const double t = std::floor(rng.uniform() * 400.0) * 0.25;
      const std::uint64_t id = next_id++;
      handles.push_back(engine.schedule_at(t, [&fire, id] { fire(id); }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 7)
      cancel_fn(engine, handles[i]);
    engine.run_until(75.0);
    engine.run_all();
    return trace;
  };

  LegacyEngine legacy;
  Engine engine;
  const Trace want = drive(
      legacy, [](LegacyEngine&, const LegacyEngine::Handle& h) {
        LegacyEngine::cancel(h);
      });
  const Trace got = drive(
      engine, [](Engine& e, const Engine::Handle& h) { e.cancel(h); });
  ASSERT_EQ(want.ids.size(), got.ids.size());
  EXPECT_EQ(want.ids, got.ids);
  for (std::size_t i = 0; i < want.times.size(); ++i)
    ASSERT_EQ(want.times[i], got.times[i]) << "at event " << i;
  EXPECT_EQ(legacy.events_processed(), engine.events_processed());
  EXPECT_EQ(legacy.now(), engine.now());
}

}  // namespace
}  // namespace epp::sim
