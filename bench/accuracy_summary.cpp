// Sections 4-6 accuracy summary — the paper's headline comparison numbers
// for all three methods on established and new server architectures.
//
// Paper (real testbed):            mean RT      throughput
//   historical, established        89.1%        (within ~1.3% via m)
//   historical, new                83.0%
//   layered queuing, established   68.8%        97.8%
//   layered queuing, new           73.4%        97.1%
//   hybrid, established            67.1%        ~LQN
//   hybrid, new                    74.9%        ~LQN
//
// Accuracy is "the mean of the lower equation accuracy and the upper
// equation accuracy", i.e. evaluated outside the transition band.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace epp;
  std::cout << "== Accuracy summary: three methods, established vs new "
               "architectures ==\n\n";

  bench::Setup setup;
  // Validation points in the lower (<66% of knee) and upper (>110%) bands.
  const std::vector<double> fractions{0.3, 0.5, 0.65, 1.3, 1.8};

  util::Table table({"method", "server", "kind", "mean_rt_accuracy_pct",
                     "throughput_accuracy_pct"});
  for (const std::string& server : bench::server_names()) {
    const auto measured = setup.validation_sweep(server, fractions);
    const bool is_new = server == "AppServS";
    for (const core::Predictor* predictor :
         {static_cast<const core::Predictor*>(setup.historical.get()),
          static_cast<const core::Predictor*>(setup.lqn.get()),
          static_cast<const core::Predictor*>(setup.hybrid.get())}) {
      const core::AccuracySummary acc =
          core::accuracy_against(*predictor, server, measured);
      table.add_row({predictor->name(), server, is_new ? "new" : "established",
                     util::fmt(acc.mean_rt_pct, 1),
                     util::fmt(acc.throughput_pct, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nexpected relationships (paper): historical is the most "
               "accurate on mean RT; throughput accuracy > RT accuracy for "
               "the queueing methods; hybrid ~= layered queuing.\n";
  return 0;
}
