// Micro-benchmark: discrete-event engine throughput (events/second), the
// cost of one "measured data point" on the simulation substrate, and the
// scaling knobs added by the million-client refactor — old engine vs new
// (slab + calendar queue), callback shim vs raw dispatch, replication
// fan-out across threads, and the fluid fast path.
//
// Results print as the usual google-benchmark console table and are also
// written to --json-out (default BENCH_sim.json) so CI can record the
// simulation-substrate perf trajectory next to BENCH_serve.json. The
// derived field engine_speedup_100k = new/old events-per-second at the
// 100k-event schedule-run case is the refactor's headline number.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fluid.hpp"
#include "sim/legacy_engine.hpp"
#include "sim/replicate.hpp"
#include "sim/resources.hpp"
#include "sim/trade/testbed.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace epp::sim;

// Provenance constants, emitted into BENCH_sim.json so a benchmark
// trajectory is attributable to the exact experiment it measured (and
// replay-diffable: epp_replay strips the "timing" object and compares
// the rest byte-for-byte).
constexpr std::uint64_t kWorkloadSeed = 42;
constexpr int kReplications = 8;
constexpr int kReplicationThreads[] = {1, 2, 4, 8};

void noop(void*, std::uint64_t) {}

// --- engine core: pre-refactor baseline vs slab/calendar engine ----------

void BM_LegacyEngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEngine engine;
    const long n = state.range(0);
    for (long i = 0; i < n; ++i)
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LegacyEngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_EngineScheduleRun(benchmark::State& state) {
  // The zero-allocation path: raw typed dispatch, no std::function.
  for (auto _ : state) {
    Engine engine;
    const long n = state.range(0);
    for (long i = 0; i < n; ++i)
      engine.schedule_raw_at(static_cast<double>(i % 97), &noop, nullptr, 0);
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_EngineScheduleRunCallback(benchmark::State& state) {
  // Same workload through the std::function compat shim.
  for (auto _ : state) {
    Engine engine;
    const long n = state.range(0);
    for (long i = 0; i < n; ++i)
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineScheduleRunCallback)->Arg(100000);

void BM_EngineCancelChurn(benchmark::State& state) {
  // Timer-wheel style load: every event reschedules and cancels, so the
  // slab's eager reclaim and generation checks sit on the hot path.
  for (auto _ : state) {
    Engine engine;
    const long n = state.range(0);
    std::vector<Engine::Handle> handles(static_cast<std::size_t>(n));
    for (long i = 0; i < n; ++i)
      handles[static_cast<std::size_t>(i)] =
          engine.schedule_raw_at(static_cast<double>(i % 97), &noop, nullptr, 0);
    for (long i = 0; i < n; i += 2)
      engine.cancel(handles[static_cast<std::size_t>(i)]);
    engine.run_all();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineCancelChurn)->Arg(100000);

// --- resources and the SoA testbed ---------------------------------------

void BM_PsResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    PsResource cpu(engine, 1.0);
    const long n = state.range(0);
    for (long i = 0; i < n; ++i)
      engine.schedule_at(0.001 * static_cast<double>(i), [&cpu] {
        cpu.add_job(0.01, [] {});
      });
    engine.run_all();
    benchmark::DoNotOptimize(cpu.active_jobs());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PsResourceChurn)->Arg(1000)->Arg(20000);

void BM_TestbedMeasurement(benchmark::State& state) {
  // Cost of one measured data point at the given client count (short
  // window to keep the benchmark itself quick).
  for (auto _ : state) {
    trade::TestbedConfig config = trade::typical_workload(
        trade::app_serv_f(), static_cast<std::size_t>(state.range(0)), kWorkloadSeed);
    config.warmup_s = 5.0;
    config.measure_s = 20.0;
    benchmark::DoNotOptimize(trade::run_testbed(config));
  }
}
BENCHMARK(BM_TestbedMeasurement)->Arg(200)->Arg(800)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

// --- parallel replications ------------------------------------------------

void BM_ReplicationScaling(benchmark::State& state) {
  // 8 independent replications of one data point on N pool threads; the
  // merged result is identical at every N, only wall-clock changes.
  epp::util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  trade::TestbedConfig config =
      trade::typical_workload(trade::app_serv_f(), 2000, kWorkloadSeed);
  config.warmup_s = 5.0;
  config.measure_s = 20.0;
  ReplicationOptions options;
  options.replications = kReplications;
  options.pool = &pool;
  for (auto _ : state)
    benchmark::DoNotOptimize(run_replications(config, options));
  state.SetItemsProcessed(state.iterations() * kReplications);
}
BENCHMARK(BM_ReplicationScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- fluid fast path ------------------------------------------------------

void BM_FluidTestbed(benchmark::State& state) {
  // The same data point answered by the ODE fluid model: cost is flat in
  // the population, so 10^6 clients is as cheap as the crossover point.
  for (auto _ : state) {
    trade::TestbedConfig config = trade::typical_workload(
        trade::app_serv_f(), static_cast<std::size_t>(state.range(0)), kWorkloadSeed);
    config.warmup_s = 5.0;
    config.measure_s = 20.0;
    config.fluid_threshold = 1;  // always engage
    benchmark::DoNotOptimize(trade::run_testbed(config));
  }
}
BENCHMARK(BM_FluidTestbed)->Arg(2600)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// --- JSON capture ---------------------------------------------------------

struct CapturedRun {
  std::string name;
  double real_ns_per_iter = 0.0;
  double items_per_second = 0.0;
};

class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      CapturedRun captured;
      captured.name = run.benchmark_name();
      if (run.iterations > 0)
        captured.real_ns_per_iter = run.real_accumulated_time /
                                    static_cast<double>(run.iterations) * 1e9;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) captured.items_per_second = it->second;
      captured_.push_back(captured);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<CapturedRun>& captured() const { return captured_; }

 private:
  std::vector<CapturedRun> captured_;
};

double items_per_second_of(const std::vector<CapturedRun>& runs,
                           const std::string& name) {
  for (const CapturedRun& run : runs)
    if (run.name == name) return run.items_per_second;
  return 0.0;
}

bool write_json(const std::string& path, const std::vector<CapturedRun>& runs) {
  // Layout contract with lint/canon.hpp (the epp_replay canonicalizer):
  // every wall-clock measurement lives under the top-level "timing"
  // object, which the canonicalizer strips before byte-comparing runs;
  // "provenance" and the benchmark name list are deterministic and must
  // reproduce exactly.
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"provenance\": {\n"
      << "    \"workload_seed\": " << kWorkloadSeed << ",\n"
      << "    \"replications\": " << kReplications << ",\n"
      << "    \"replication_threads\": [";
  for (std::size_t i = 0; i < std::size(kReplicationThreads); ++i)
    out << (i > 0 ? ", " : "") << kReplicationThreads[i];
  out << "],\n"
      << "    \"benchmark_names\": [";
  for (std::size_t i = 0; i < runs.size(); ++i)
    out << (i > 0 ? ", " : "") << "\"" << runs[i].name << "\"";
  out << "]\n  },\n";
  out << "  \"timing\": {\n    \"benchmarks\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << "      {\"name\": \"" << runs[i].name
        << "\", \"real_ns_per_iter\": " << runs[i].real_ns_per_iter
        << ", \"items_per_second\": " << runs[i].items_per_second << "}";
    out << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  out << "    ],\n";
  const double old_rate =
      items_per_second_of(runs, "BM_LegacyEngineScheduleRun/100000");
  const double new_rate = items_per_second_of(runs, "BM_EngineScheduleRun/100000");
  out << "    \"engine_events_per_second_old\": " << old_rate << ",\n"
      << "    \"engine_events_per_second_new\": " << new_rate << ",\n"
      << "    \"engine_speedup_100k\": "
      << (old_rate > 0.0 ? new_rate / old_rate : 0.0) << "\n  }\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees the command line.
  std::string json_out = "BENCH_sim.json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      json_out.clear();
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_out.empty()) {
    if (!write_json(json_out, reporter.captured())) {
      std::cerr << "sim_engine_micro: cannot write " << json_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << json_out << "\n";
  }
  return 0;
}
