// Corpus: EPP-DET-006 — pointer-keyed container. Iteration order
// follows allocation addresses, which ASLR reshuffles every run.
#include <unordered_map>

namespace lint_corpus {

struct CorpusSession {};

inline std::unordered_map<CorpusSession*, int> retry_counts;

inline void bump_retries(CorpusSession* session) {
  ++retry_counts[session];
}

}  // namespace lint_corpus
