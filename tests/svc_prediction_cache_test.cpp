#include "svc/prediction_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace epp::svc {
namespace {

CacheKey key_of(std::int64_t browse, Method method = Method::kHistorical,
                const std::string& server = "AppServF") {
  CacheKey key;
  key.method = method;
  key.server = server;
  key.browse_q = browse;
  key.think_q = 700;
  return key;
}

CachedPrediction value_of(double x) { return {x, 2.0 * x}; }

TEST(PredictionCache, MissThenHitReturnsStoredValue) {
  PredictionCache cache(16, 1);
  EXPECT_FALSE(cache.lookup(key_of(100)).has_value());
  cache.insert(key_of(100), value_of(0.25));
  const auto hit = cache.lookup(key_of(100));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->mean_rt_s, 0.25);
  EXPECT_DOUBLE_EQ(hit->throughput_rps, 0.5);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PredictionCache, KeysDistinguishMethodServerAndWorkload) {
  PredictionCache cache(16, 4);
  cache.insert(key_of(100, Method::kHistorical), value_of(1.0));
  EXPECT_FALSE(cache.lookup(key_of(100, Method::kLqn)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(100, Method::kHistorical, "AppServS"))
                   .has_value());
  EXPECT_FALSE(cache.lookup(key_of(101)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(100)).has_value());
}

TEST(PredictionCache, LruEvictionOrder) {
  PredictionCache cache(3, 1);  // one shard so the LRU order is global
  cache.insert(key_of(1), value_of(1.0));
  cache.insert(key_of(2), value_of(2.0));
  cache.insert(key_of(3), value_of(3.0));
  // Touch key 1 so key 2 becomes the least recently used...
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  // ...and the insert that exceeds capacity evicts it.
  cache.insert(key_of(4), value_of(4.0));
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(4)).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
}

TEST(PredictionCache, InsertRefreshesExistingEntryWithoutEviction) {
  PredictionCache cache(2, 1);
  cache.insert(key_of(1), value_of(1.0));
  cache.insert(key_of(2), value_of(2.0));
  cache.insert(key_of(1), value_of(10.0));  // refresh, not a new entry
  EXPECT_DOUBLE_EQ(cache.lookup(key_of(1))->mean_rt_s, 10.0);
  EXPECT_TRUE(cache.lookup(key_of(2)).has_value());
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(PredictionCache, ZeroCapacityDisablesCaching) {
  PredictionCache cache(0, 2);
  cache.insert(key_of(1), value_of(1.0));
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PredictionCache, ClearDropsEntriesAndResetsCounters) {
  PredictionCache cache(16, 4);
  cache.insert(key_of(1), value_of(1.0));
  (void)cache.lookup(key_of(1));
  (void)cache.lookup(key_of(2));
  cache.clear();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(PredictionCache, ConcurrentGetOrInsertIsConsistent) {
  PredictionCache cache(1024, 8);
  util::ThreadPool pool(4);
  constexpr std::size_t kKeys = 64;
  constexpr std::size_t kOps = 4000;
  // Racing get-or-compute over a shared working set: values are a pure
  // function of the key, as predictions are, so duplicate inserts agree.
  pool.parallel_for(kOps, [&](std::size_t i) {
    const std::int64_t id = static_cast<std::int64_t>(i % kKeys);
    if (!cache.lookup(key_of(id)).has_value())
      cache.insert(key_of(id), value_of(static_cast<double>(id)));
  });
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kOps);
  EXPECT_EQ(stats.entries, kKeys);
  EXPECT_EQ(stats.evictions, 0u);
  for (std::size_t id = 0; id < kKeys; ++id) {
    const auto hit = cache.lookup(key_of(static_cast<std::int64_t>(id)));
    ASSERT_TRUE(hit.has_value()) << id;
    EXPECT_DOUBLE_EQ(hit->mean_rt_s, static_cast<double>(id));
  }
}

TEST(PredictionCache, MethodNamesRoundTrip) {
  for (Method m : {Method::kHistorical, Method::kLqn, Method::kHybrid})
    EXPECT_EQ(method_from_name(method_name(m)), m);
  EXPECT_EQ(method_from_name("layered-queuing"), Method::kLqn);
  EXPECT_THROW(method_from_name("psychic"), std::invalid_argument);
}

}  // namespace
}  // namespace epp::svc
