// Cross-validation of the two substrates: the layered-queuing solver's
// predictions against the discrete-event testbed's measurements on the
// same case-study parameters. The paper's LQN model achieved ~97% accuracy
// on throughput and ~70% on mean response time against its real testbed;
// our solver models the simulator's exact queueing structure, so agreement
// here should be tighter — these tests pin that relationship down.
#include <gtest/gtest.h>

#include "core/trade_model.hpp"
#include "lqn/solver.hpp"
#include "sim/trade/testbed.hpp"
#include "util/stats.hpp"

namespace epp {
namespace {

core::TradeCalibration simulator_truth() {
  // The simulator's aggregate demands (see sim/trade/operations.cpp):
  // this is what a perfect calibration would recover.
  const auto browse = sim::trade::browse_aggregate();
  const auto buy = sim::trade::buy_aggregate();
  core::TradeCalibration cal;
  cal.browse = {browse.app_cpu_s, browse.db_cpu_per_call, browse.disk_per_call,
                browse.mean_db_calls};
  cal.buy = {buy.app_cpu_s, buy.db_cpu_per_call, buy.disk_per_call,
             buy.mean_db_calls};
  return cal;
}

struct Point {
  std::size_t clients;
  double measured_rt, predicted_rt;
  double measured_x, predicted_x;
};

Point compare_at(std::size_t clients, std::uint64_t seed) {
  sim::trade::TestbedConfig config =
      sim::trade::typical_workload(sim::trade::app_serv_f(), clients, seed);
  config.warmup_s = 40.0;
  config.measure_s = 160.0;
  const auto measured = sim::trade::run_testbed(config);

  const auto model = core::build_trade_lqn(
      simulator_truth(), core::arch_f(),
      {static_cast<double>(clients), 0.0, 7.0});
  const auto predicted = lqn::LayeredSolver().solve(model);
  return {clients, measured.mean_rt_s,
          predicted.response_time_s("browse_clients"), measured.throughput_rps,
          predicted.throughput_rps("browse_clients")};
}

class LqnVsSim : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LqnVsSim, ThroughputWithinFivePercent) {
  const Point p = compare_at(GetParam(), 99);
  EXPECT_GT(util::prediction_accuracy_percent(p.predicted_x, p.measured_x),
            95.0)
      << "clients=" << p.clients << " measured=" << p.measured_x
      << " predicted=" << p.predicted_x;
}

TEST_P(LqnVsSim, MeanResponseTimeWithinThirtyPercent) {
  const Point p = compare_at(GetParam(), 99);
  // RT accuracy is intrinsically worse than throughput accuracy near the
  // knee (the paper saw ~70%); our solver shares the simulator's structure
  // so we require a tighter 70%+ at every point.
  EXPECT_GT(util::prediction_accuracy_percent(p.predicted_rt, p.measured_rt),
            70.0)
      << "clients=" << p.clients << " measured=" << p.measured_rt
      << " predicted=" << p.predicted_rt;
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, LqnVsSim,
                         ::testing::Values(200, 800, 1200, 1500, 2200));

TEST(LqnVsSimMixed, MixedWorkloadThroughputAgrees) {
  sim::trade::TestbedConfig config =
      sim::trade::mixed_workload(sim::trade::app_serv_f(), 800, 0.25, 7);
  config.warmup_s = 40.0;
  config.measure_s = 160.0;
  const auto measured = sim::trade::run_testbed(config);

  const auto model =
      core::build_trade_lqn(simulator_truth(), core::arch_f(), {600.0, 200.0, 7.0});
  const auto predicted = lqn::LayeredSolver().solve(model);
  EXPECT_GT(util::prediction_accuracy_percent(predicted.total_throughput_rps(),
                                              measured.throughput_rps),
            93.0);
}

TEST(LqnVsSimNewServer, PredictsNewArchitectureFromSpeedRatio) {
  // The paper's headline use-case: calibrate on an established server,
  // predict a new architecture by scaling with the benchmarked speed ratio.
  sim::trade::TestbedConfig config =
      sim::trade::typical_workload(sim::trade::app_serv_s(), 500, 13);
  config.warmup_s = 40.0;
  config.measure_s = 160.0;
  const auto measured = sim::trade::run_testbed(config);

  const auto model = core::build_trade_lqn(simulator_truth(), core::arch_s(),
                                           {500.0, 0.0, 7.0});
  const auto predicted = lqn::LayeredSolver().solve(model);
  EXPECT_GT(util::prediction_accuracy_percent(
                predicted.throughput_rps("browse_clients"),
                measured.throughput_rps),
            95.0);
  EXPECT_GT(util::prediction_accuracy_percent(
                predicted.response_time_s("browse_clients"), measured.mean_rt_s),
            60.0);
}

}  // namespace
}  // namespace epp
