// Corpus: EPP-HOT-004 — console I/O inside a hot region.
#include <cstdio>

#include "util/annotations.hpp"

namespace lint_corpus {

EPP_HOT_BEGIN(corpus_io);

inline void trace_event(int id) {
  std::printf("event %d\n", id);
}

EPP_HOT_END(corpus_io);

}  // namespace lint_corpus
