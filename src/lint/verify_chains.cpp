// EPP-SEM-020/021: fallback-chain coverage. Mirrors the degradation
// chain ResilientPredictor builds per request (resilient.cpp's
// kFallbackOrder: lqn -> hybrid -> historical, starting at the requested
// method) and the availability each method actually has against a
// bundle: the lqn/hybrid predictors cover every catalog server
// (make_predictors registers them all), the historical predictor only
// servers with a fit in the embedded mean model. A (method, server)
// request whose whole chain is unavailable can never terminate in a
// prediction; a single-method chain with circuit breaking armed and the
// stale store disabled dies with the first open breaker.
#include "lint/verify.hpp"

#include <array>
#include <string>
#include <vector>

namespace epp::lint {
namespace {

constexpr std::array<svc::Method, 3> kFallbackOrder = {
    svc::Method::kLqn, svc::Method::kHybrid, svc::Method::kHistorical};

std::vector<svc::Method> chain_for(svc::Method requested,
                                   bool fallback_enabled) {
  std::vector<svc::Method> chain{requested};
  if (!fallback_enabled) return chain;
  bool seen = false;
  for (const svc::Method method : kFallbackOrder) {
    if (method == requested) {
      seen = true;
      continue;
    }
    if (seen) chain.push_back(method);
  }
  return chain;
}

}  // namespace

void verify_fallback_chains(const calib::CalibrationBundle& bundle,
                            const std::string& file,
                            const calib::BundleParseInfo* info,
                            const VerifyOptions& options,
                            Diagnostics& diagnostics) {
  if (!options.check_chains) return;

  // Every server a request can name: the catalog plus anything only the
  // embedded mean model knows about.
  std::vector<std::string> servers;
  std::vector<bool> in_catalog;
  for (const calib::ServerRecord& record : bundle.servers) {
    servers.push_back(record.name);
    in_catalog.push_back(true);
  }
  for (const std::string& name : bundle.mean_model.servers()) {
    bool known = false;
    for (const std::string& existing : servers)
      known = known || existing == name;
    if (!known) {
      servers.push_back(name);
      in_catalog.push_back(false);
    }
  }

  std::vector<svc::Method> methods = options.methods;
  if (methods.empty())
    methods = {svc::Method::kHistorical, svc::Method::kLqn,
               svc::Method::kHybrid};

  const svc::ResilienceOptions& res = options.resilience;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const std::string& server = servers[i];
    SourceLocation where{file, 0};
    if (info != nullptr) {
      if (const auto it = info->server_lines.find(server);
          it != info->server_lines.end())
        where.line = it->second;
      else if (const auto fit = info->mean_server_lines.find(server);
               fit != info->mean_server_lines.end())
        where.line = fit->second;
    }
    for (const svc::Method requested : methods) {
      const std::vector<svc::Method> chain =
          chain_for(requested, res.fallback_enabled);
      std::string listing;
      std::size_t viable = 0;
      for (const svc::Method method : chain) {
        const bool available = method == svc::Method::kHistorical
                                   ? bundle.mean_model.has_server(server)
                                   : in_catalog[i];
        if (available) ++viable;
        if (!listing.empty()) listing += " -> ";
        listing += std::string(method_name(method)) +
                   (available ? "" : " (unavailable)");
      }
      if (viable == 0) {
        diagnostics.error(
            "EPP-SEM-020", where,
            "request (method '" + std::string(method_name(requested)) +
                "', server '" + server + "') has no viable method: chain " +
                listing + " dead-ends",
            "re-run epp_calibrate so every catalog server gets a fit, or "
            "enable fallback to reach a method that covers '" + server +
                "'");
      } else if (viable == 1 && res.breaker_failure_threshold > 0 &&
                 !res.serve_stale) {
        diagnostics.warning(
            "EPP-SEM-021", where,
            "request (method '" + std::string(method_name(requested)) +
                "', server '" + server +
                "') rests on a single viable method (chain " + listing +
                ") while circuit breaking is armed and the stale store is "
                "disabled: one open breaker dead-ends it",
            "enable serve_stale or keep at least two viable methods in "
            "the chain so an open breaker degrades instead of failing");
      }
    }
  }
}

}  // namespace epp::lint
