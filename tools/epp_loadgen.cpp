// epp_loadgen — open-loop load generator for epp_serve.
//
// Drives the prediction daemon at a configurable request rate the way
// the serving literature measures tail latency: *open loop*. Each lane
// walks a request schedule (Poisson or uniform inter-arrivals) and
// sends on time whether or not earlier responses have come back, so a
// slow server accumulates in-flight requests instead of silently
// slowing the offered load — exactly the regime where admission control
// and p99.9 matter. Responses are matched asynchronously by request id
// on a receiver thread per connection.
//
// Robustness: a refused or reset connection is a *measured event*, not
// a crash. Each lane reconnects with jittered exponential backoff
// (counting reconnects and connect failures), requests that die with
// their connection are retried on the fresh one up to --retry-budget,
// and in-flight requests lost to a reset are counted as lost, so the
// harness can drive a chaotic server (epp_serve --fault-spec 'net:...')
// to completion and assert on the damage instead of aborting at the
// first RST.
//
// Drift: with --observe-scale S, every successful prediction is
// followed by a kObserve frame reporting S x the predicted RT as the
// "measured" value — a synthetic, perfectly controlled drift signal
// (constant relative error S-1) that trips the server's detector in a
// bounded number of observations. S=1 reports perfect agreement.
//
// The request mix follows the hot/cold pattern of key-value loadgens: a
// small hot set of (method, server, workload) tuples drawn with
// probability --hot-fraction (these hammer the server's prediction
// cache, like repeated capacity questions from a resource manager), and
// a cold tail of uniformly drawn client loads that mostly miss. Latency
// lands in fixed-width bucket histograms (one per lane, merged at the
// end — no cross-thread sync on the hot path): the client-observed
// round trip, and the server-reported wall time inside the predictor
// itself. Both report p50/p99/p99.9.
//
// Results print as a human summary and are written to --json-out
// (default BENCH_serve.json) so the serving perf trajectory is recorded
// per run.
//
// Usage:
//   epp_loadgen --port P [--host H] [--rps R] [--duration S]
//               [--connections C] [--methods m1,m2] [--servers s1,s2]
//               [--loads lo:hi:step] [--buys p1,p2] [--think-time S]
//               [--hot-set N] [--hot-fraction F] [--arrivals poisson|uniform]
//               [--deadline-ms MS] [--retry-budget N] [--connect-attempts N]
//               [--observe-scale S] [--seed N] [--json-out FILE] [--shutdown]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "svc/resilient.hpp"
#include "util/annotations.hpp"
#include "util/cli.hpp"
#include "util/lock_rank.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace epp;
namespace cli = util::cli;
using Clock = std::chrono::steady_clock;

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double rps = 500.0;
  double duration_s = 5.0;
  std::size_t connections = 4;
  std::vector<svc::Method> methods{svc::Method::kHistorical, svc::Method::kLqn,
                                   svc::Method::kHybrid};
  std::vector<std::string> servers{"AppServS", "AppServF", "AppServVF"};
  std::vector<double> loads;  // cold range, expanded grid
  std::vector<double> buy_pcts{0.0, 25.0};
  double think_time_s = 7.0;
  std::size_t hot_set = 32;
  double hot_fraction = 0.8;
  bool poisson = true;
  double deadline_ms = 0.0;
  /// Resends of one request across reconnects before giving it up.
  int retry_budget = 2;
  /// Connect attempts per (re)connect episode before the lane dies.
  int connect_attempts = 10;
  /// > 0: follow each ok prediction with a kObserve frame reporting
  /// scale x the predicted RT as measured (drift drive). 0 = off.
  double observe_scale = 0.0;
  std::uint64_t seed = 0x10ADC0DEULL;
  std::string json_out = "BENCH_serve.json";
  bool send_shutdown = false;
};

int usage(std::ostream& out) {
  out << "usage: epp_loadgen --port P [--host H] [--rps R] [--duration S]\n"
         "                   [--connections C] [--methods m1,m2]\n"
         "                   [--servers s1,s2] [--loads lo:hi:step]\n"
         "                   [--buys p1,p2] [--think-time S] [--hot-set N]\n"
         "                   [--hot-fraction F] [--arrivals poisson|uniform]\n"
         "                   [--deadline-ms MS] [--retry-budget N]\n"
         "                   [--connect-attempts N] [--observe-scale S]\n"
         "                   [--seed N] [--json-out FILE] [--no-json]\n"
         "                   [--shutdown]\n\n"
         "Open-loop load generator for epp_serve: sends prediction\n"
         "requests at --rps regardless of response progress, mixes a hot\n"
         "set of repeated requests with cold uniform loads, and reports\n"
         "achieved throughput plus p50/p99/p99.9 of both the client round\n"
         "trip and the server-side predictor, as text and as a\n"
         "BENCH_serve.json artifact. Lost connections reconnect with\n"
         "jittered exponential backoff and requests retry up to\n"
         "--retry-budget, so a chaotic server is measured, not fatal.\n"
         "--observe-scale S feeds the server's drift detector with\n"
         "S x predicted response times. --shutdown drains the server\n"
         "when the run completes.\n";
  return 1;
}

LoadgenConfig parse_args(int argc, char** argv) {
  LoadgenConfig config;
  config.loads = cli::parse_range("--loads", "100:1400:100");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc)
        throw std::invalid_argument(std::string(arg) + " wants a value");
      return argv[++i];
    };
    if (arg == "--host") {
      config.host = value();
    } else if (arg == "--port") {
      config.port =
          static_cast<std::uint16_t>(cli::parse_int(arg, value(), 1, 65535));
    } else if (arg == "--rps") {
      config.rps = cli::parse_positive_double(arg, value());
    } else if (arg == "--duration") {
      config.duration_s = cli::parse_positive_double(arg, value());
    } else if (arg == "--connections") {
      config.connections = cli::parse_size(arg, value(), 1);
    } else if (arg == "--methods") {
      config.methods.clear();
      std::stringstream stream{value()};
      std::string name;
      while (std::getline(stream, name, ','))
        if (!name.empty()) config.methods.push_back(svc::method_from_name(name));
      if (config.methods.empty())
        throw std::invalid_argument("--methods wants at least one method");
    } else if (arg == "--servers") {
      config.servers.clear();
      std::stringstream stream{value()};
      std::string name;
      while (std::getline(stream, name, ','))
        if (!name.empty()) config.servers.push_back(name);
      if (config.servers.empty())
        throw std::invalid_argument("--servers wants at least one server");
    } else if (arg == "--loads") {
      config.loads = cli::parse_range(arg, value());
    } else if (arg == "--buys") {
      config.buy_pcts = cli::parse_double_list(arg, value());
    } else if (arg == "--think-time") {
      config.think_time_s = cli::parse_positive_double(arg, value());
    } else if (arg == "--hot-set") {
      config.hot_set = cli::parse_size(arg, value(), 1);
    } else if (arg == "--hot-fraction") {
      config.hot_fraction = cli::parse_double_at_least(arg, value(), 0.0);
      if (config.hot_fraction > 1.0)
        throw std::invalid_argument("--hot-fraction wants a value in [0, 1]");
    } else if (arg == "--arrivals") {
      const std::string kind = value();
      if (kind == "poisson") {
        config.poisson = true;
      } else if (kind == "uniform") {
        config.poisson = false;
      } else {
        throw std::invalid_argument("--arrivals wants poisson or uniform");
      }
    } else if (arg == "--deadline-ms") {
      config.deadline_ms = cli::parse_positive_double(arg, value());
    } else if (arg == "--retry-budget") {
      config.retry_budget =
          static_cast<int>(cli::parse_int(arg, value(), 0, 100));
    } else if (arg == "--connect-attempts") {
      config.connect_attempts =
          static_cast<int>(cli::parse_int(arg, value(), 1, 1000));
    } else if (arg == "--observe-scale") {
      config.observe_scale = cli::parse_positive_double(arg, value());
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(
          cli::parse_int(arg, value(), 0, std::numeric_limits<long long>::max()));
    } else if (arg == "--json-out") {
      config.json_out = value();
    } else if (arg == "--no-json") {
      config.json_out.clear();
    } else if (arg == "--shutdown") {
      config.send_shutdown = true;
    } else {
      throw std::invalid_argument("unknown argument: " + std::string(arg));
    }
  }
  if (config.port == 0)
    throw std::invalid_argument("--port is required (see epp_serve's "
                                "'listening on' line)");
  return config;
}

// --- fixed-width latency-bucket histogram ---------------------------------
// The idiom the key-value serving harnesses use: an array of equal-width
// buckets indexed by latency, merged across threads after the run, with
// percentiles read off the cumulative counts. O(1) record, no allocation,
// deterministic merge.
class LatencyHistogram {
 public:
  LatencyHistogram(double bucket_width_s, std::size_t buckets)
      : width_s_(bucket_width_s), counts_(buckets, 0) {}

  void record(double seconds) {
    ++total_;
    sum_s_ += seconds;
    max_s_ = std::max(max_s_, seconds);
    const double bucket = seconds / width_s_;
    if (bucket >= static_cast<double>(counts_.size())) {
      ++overflow_;
      return;
    }
    ++counts_[static_cast<std::size_t>(bucket)];
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i)
      counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
    sum_s_ += other.sum_s_;
    max_s_ = std::max(max_s_, other.max_s_);
  }

  /// Percentile as the midpoint of the bucket holding the p-quantile
  /// sample; the overflow bucket reports the observed max.
  double percentile_s(double p) const {
    if (total_ == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > rank) return (static_cast<double>(i) + 0.5) * width_s_;
    }
    return max_s_;
  }

  double mean_s() const {
    return total_ > 0 ? sum_s_ / static_cast<double>(total_) : 0.0;
  }
  double max_s() const { return max_s_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t overflow() const { return overflow_; }

 private:
  double width_s_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_s_ = 0.0;
  double max_s_ = 0.0;
};

/// One concrete request template from the mix.
struct RequestTemplate {
  svc::Method method;
  std::string server;
  double browse_clients;
  double buy_clients;
};

RequestTemplate draw_template(const LoadgenConfig& config, util::Rng& rng,
                              const std::vector<RequestTemplate>& hot_set) {
  if (!hot_set.empty() && rng.bernoulli(config.hot_fraction))
    return hot_set[rng.below(hot_set.size())];
  const svc::Method method = config.methods[rng.below(config.methods.size())];
  const std::string& server = config.servers[rng.below(config.servers.size())];
  const double buy_pct = config.buy_pcts[rng.below(config.buy_pcts.size())];
  // Cold loads: continuous-uniform across the configured span, so most
  // draws land on distinct quantized workloads (cache misses).
  const double lo = config.loads.front();
  const double hi = config.loads.back();
  const double clients = std::floor(lo >= hi ? lo : rng.uniform(lo, hi + 1.0));
  const double buy = std::floor(clients * buy_pct / 100.0);
  return RequestTemplate{method, server, clients - buy, buy};
}

// --- per-lane state -------------------------------------------------------

struct LaneStats {
  // Sender-side (lane thread only).
  std::uint64_t sent = 0;
  std::uint64_t send_failures = 0;    // individual failed writes
  std::uint64_t request_retries = 0;  // resends after a reconnect
  std::uint64_t reconnects = 0;       // successful re-establishments
  std::uint64_t connect_failures = 0; // refused/failed connect() calls
  std::uint64_t lost_inflight = 0;    // in-flight requests lost to a reset
  // Receiver-side (receiver thread only).
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t other_errors = 0;
  std::uint64_t fallback = 0;
  std::uint64_t stale = 0;
  std::uint64_t cached = 0;
  std::uint64_t observes_sent = 0;
  LatencyHistogram client_hist{20e-6, 50'000};     // 20 us grain, 1 s span
  LatencyHistogram predictor_hist{5e-6, 40'000};   // 5 us grain, 200 ms span
};

/// What the receiver needs to score a response (and build an observe
/// frame for it).
struct Pending {
  Clock::time_point sent_at;
  RequestTemplate tmpl;
};

/// One socket incarnation: everything that dies with a connection. The
/// lane replaces the whole object on reconnect, so a receiver thread
/// always reads from the incarnation it was spawned for.
struct LiveConn {
  net::Socket socket;
  // sender + receiver (observe frames) both write
  util::RankedMutex write_mutex{EPP_LOCK_RANK(110), "tool.loadgen.write"};
  util::RankedMutex inflight_mutex{EPP_LOCK_RANK(100), "tool.loadgen.inflight"};
  std::unordered_map<std::uint64_t, Pending> inflight;
};

/// One load-generation lane: a schedule, a current connection and its
/// receiver thread, reconnected as needed.
struct Lane {
  LaneStats stats;
  std::atomic<std::uint64_t> outstanding{0};
  std::unique_ptr<LiveConn> conn;  // written by the lane thread only
  std::thread receiver;
  bool dead = false;  // lane gave up (connect attempts exhausted)
};

void receiver_loop(const LoadgenConfig& config, Lane& lane, LiveConn& conn) {
  std::vector<std::uint8_t> payload;
  std::uint64_t observe_id = 0;
  for (;;) {
    bool got = false;
    try {
      got = net::read_frame(conn.socket, payload);
    } catch (const std::exception&) {
      break;
    }
    if (!got) break;
    const Clock::time_point now = Clock::now();
    net::ResponseMessage response;
    try {
      response = net::decode_response(payload);
    } catch (const net::FrameError&) {
      break;
    }
    std::optional<Pending> pending;
    {
      const std::lock_guard lock(conn.inflight_mutex);
      const auto it = conn.inflight.find(response.id);
      if (it != conn.inflight.end()) {
        pending = std::move(it->second);
        conn.inflight.erase(it);
      }
    }
    if (!pending) continue;  // control/observe ack (ping/stats/observe)
    lane.outstanding.fetch_sub(1, std::memory_order_acq_rel);

    LaneStats& stats = lane.stats;
    ++stats.received;
    stats.client_hist.record(
        std::chrono::duration<double>(now - pending->sent_at).count());
    if (response.ok()) {
      ++stats.ok;
      stats.predictor_hist.record(response.predictor_latency_s);
      if ((response.flags & net::kFlagFallback) != 0) ++stats.fallback;
      if ((response.flags & net::kFlagStale) != 0) ++stats.stale;
      if ((response.flags & net::kFlagCached) != 0) ++stats.cached;
      if (config.observe_scale > 0.0 && response.mean_rt_s > 0.0) {
        // Close the telemetry loop: report scale x the prediction as the
        // measured RT for the same workload. Fire-and-forget — the ack
        // has no inflight entry and is skipped above.
        net::RequestMessage observe;
        observe.kind = net::MessageKind::kObserve;
        observe.id = 0x0B5E000000000000ULL | ++observe_id;
        observe.method = static_cast<std::uint8_t>(pending->tmpl.method);
        observe.browse_clients = pending->tmpl.browse_clients;
        observe.buy_clients = pending->tmpl.buy_clients;
        observe.think_time_s = config.think_time_s;
        observe.observed_rt_s = response.mean_rt_s * config.observe_scale;
        observe.server = pending->tmpl.server;
        try {
          const std::lock_guard lock(conn.write_mutex);
          if (net::write_frame(conn.socket, net::encode_request(observe)))
            ++stats.observes_sent;
        } catch (const std::exception&) {
          // Connection died mid-observe; the sender will notice.
        }
      }
    } else if (response.error_code ==
               static_cast<std::uint8_t>(svc::ErrorCode::kOverloaded)) {
      ++stats.shed;
    } else if (response.error_code ==
               static_cast<std::uint8_t>(svc::ErrorCode::kDeadlineExceeded)) {
      ++stats.deadline;
    } else {
      ++stats.other_errors;
    }
  }
}

/// Tear down the lane's current connection: unblock and join the
/// receiver, then count every still-pending request as lost.
void close_conn(Lane& lane) {
  if (lane.conn == nullptr) return;
  lane.conn->socket.shutdown_both();
  if (lane.receiver.joinable()) lane.receiver.join();
  std::size_t lost = 0;
  {
    const std::lock_guard lock(lane.conn->inflight_mutex);
    lost = lane.conn->inflight.size();
    lane.conn->inflight.clear();
  }
  lane.stats.lost_inflight += lost;
  lane.outstanding.fetch_sub(lost, std::memory_order_acq_rel);
  lane.conn.reset();
}

/// (Re)establish the lane's connection with jittered exponential
/// backoff: attempt k sleeps ~ base * 2^k, jittered uniformly in
/// [0.5, 1.5) so lanes retrying the same dead server do not stampede
/// it in lockstep. Returns false (lane dead) when attempts run out.
bool open_conn(const LoadgenConfig& config, Lane& lane, util::Rng& rng) {
  close_conn(lane);
  constexpr double kBackoffBaseS = 0.010;
  constexpr double kBackoffCapS = 0.640;
  for (int attempt = 0; attempt < config.connect_attempts; ++attempt) {
    if (attempt > 0) {
      const double backoff = std::min(
          kBackoffCapS, kBackoffBaseS * std::pow(2.0, attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double>(
          backoff * rng.uniform(0.5, 1.5)));
    }
    try {
      auto conn = std::make_unique<LiveConn>();
      conn->socket = net::Socket::connect(config.host, config.port);
      lane.conn = std::move(conn);
      ++lane.stats.reconnects;
      lane.receiver = std::thread(
          [&config, &lane, live = lane.conn.get()] {
            receiver_loop(config, lane, *live);
          });
      return true;
    } catch (const net::SocketError&) {
      ++lane.stats.connect_failures;
    }
  }
  lane.dead = true;
  return false;
}

void lane_loop(const LoadgenConfig& config, Lane& lane, std::size_t index,
               const std::vector<RequestTemplate>& hot_set) {
  util::Rng rng(config.seed, /*stream=*/1 + index);
  if (lane.conn == nullptr && !open_conn(config, lane, rng)) return;

  const double rate = config.rps / static_cast<double>(config.connections);
  const double mean_gap_s = 1.0 / rate;

  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config.duration_s));
  // Desynchronize the lanes' schedules.
  double next_s = rng.uniform(0.0, mean_gap_s);
  std::uint64_t sequence = 0;

  for (;;) {
    const Clock::time_point due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(next_s));
    if (due >= end) break;
    // Open loop: sleep until the schedule says send, then send — never
    // wait for responses, never skip a slot to hide server slowness.
    std::this_thread::sleep_until(due);

    const RequestTemplate tmpl = draw_template(config, rng, hot_set);
    net::RequestMessage request;
    request.kind = net::MessageKind::kPredict;
    request.id = (static_cast<std::uint64_t>(index) << 40) | ++sequence;
    request.method = static_cast<std::uint8_t>(tmpl.method);
    request.browse_clients = tmpl.browse_clients;
    request.buy_clients = tmpl.buy_clients;
    request.think_time_s = config.think_time_s;
    request.deadline_ms = config.deadline_ms;
    request.server = tmpl.server;
    // Pre-framed once: retries resend the identical wire bytes.
    const std::vector<std::uint8_t> wire =
        net::frame_wire(net::encode_request(request));

    // Send with a per-request retry budget: a failed write means the
    // connection is gone — reconnect (backoff inside) and resend the
    // same request on the fresh socket, up to the budget.
    bool lane_alive = true;
    for (int attempt = 0; attempt <= config.retry_budget; ++attempt) {
      if (attempt > 0) {
        ++lane.stats.request_retries;
        if (!open_conn(config, lane, rng)) {
          lane_alive = false;
          break;
        }
      }
      {
        const std::lock_guard lock(lane.conn->inflight_mutex);
        lane.conn->inflight.emplace(request.id,
                                    Pending{Clock::now(), tmpl});
      }
      lane.outstanding.fetch_add(1, std::memory_order_acq_rel);
      bool sent = false;
      try {
        const std::lock_guard lock(lane.conn->write_mutex);
        sent = lane.conn->socket.send_all(wire.data(), wire.size());
      } catch (const std::exception&) {
        sent = false;
      }
      if (sent) {
        ++lane.stats.sent;
        break;
      }
      ++lane.stats.send_failures;
      lane.outstanding.fetch_sub(1, std::memory_order_acq_rel);
      const std::lock_guard lock(lane.conn->inflight_mutex);
      lane.conn->inflight.erase(request.id);
    }
    if (!lane_alive) break;  // connect attempts exhausted; stop this lane

    next_s += config.poisson ? rng.exponential(mean_gap_s) : mean_gap_s;
  }
}

std::string json_quantiles(const LatencyHistogram& hist) {
  std::ostringstream out;
  out << "{\"p50_ms\": " << hist.percentile_s(50.0) * 1e3
      << ", \"p99_ms\": " << hist.percentile_s(99.0) * 1e3
      << ", \"p999_ms\": " << hist.percentile_s(99.9) * 1e3
      << ", \"mean_ms\": " << hist.mean_s() * 1e3
      << ", \"max_ms\": " << hist.max_s() * 1e3
      << ", \"samples\": " << hist.total()
      << ", \"overflow\": " << hist.overflow() << "}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) try {
  const LoadgenConfig config = parse_args(argc, argv);

  // Hot set: a deterministic sample of grid cells (the repeated capacity
  // questions); cold traffic is drawn fresh per request.
  std::vector<RequestTemplate> hot_set;
  {
    util::Rng rng(config.seed, /*stream=*/0x407);
    for (std::size_t i = 0; i < config.hot_set; ++i) {
      const svc::Method method =
          config.methods[rng.below(config.methods.size())];
      const std::string& server =
          config.servers[rng.below(config.servers.size())];
      const double buy_pct = config.buy_pcts[rng.below(config.buy_pcts.size())];
      const double clients = config.loads[rng.below(config.loads.size())];
      const double buy = std::floor(clients * buy_pct / 100.0);
      hot_set.push_back(RequestTemplate{method, server, clients - buy, buy});
    }
  }

  std::cerr << "offering " << config.rps << " rps ("
            << (config.poisson ? "poisson" : "uniform") << " arrivals) for "
            << config.duration_s << " s on " << config.connections
            << " lane(s), hot fraction " << config.hot_fraction
            << ", retry budget " << config.retry_budget << "\n";

  // Lanes connect inside their own threads (with backoff), so a server
  // that is still starting — or rejecting connects under chaos — delays
  // a lane instead of aborting the whole run.
  std::vector<std::unique_ptr<Lane>> lanes;
  for (std::size_t i = 0; i < config.connections; ++i)
    lanes.push_back(std::make_unique<Lane>());

  const util::Timer wall;
  std::vector<std::thread> lane_threads;
  lane_threads.reserve(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i)
    lane_threads.emplace_back(
        [&, i] { lane_loop(config, *lanes[i], i, hot_set); });
  for (std::thread& thread : lane_threads) thread.join();
  const double send_wall_s = wall.elapsed_seconds();

  // Drain: give in-flight responses a grace period to arrive.
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::seconds(5);
  for (auto& lane : lanes)
    while (lane->outstanding.load(std::memory_order_acquire) > 0 &&
           Clock::now() < drain_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));

  if (config.send_shutdown) {
    net::RequestMessage shutdown;
    shutdown.kind = net::MessageKind::kShutdown;
    shutdown.id = 0;
    for (auto& lane : lanes) {
      if (lane->conn == nullptr) continue;
      try {
        const std::lock_guard lock(lane->conn->write_mutex);
        if (net::write_frame(lane->conn->socket,
                             net::encode_request(shutdown)))
          break;  // one accepted shutdown frame drains the server
      } catch (const std::exception&) {
        // This lane's socket is gone; try the next.
      }
    }
  }

  // Close our halves: receivers unblock on EOF.
  for (auto& lane : lanes) {
    if (lane->conn != nullptr) lane->conn->socket.shutdown_both();
    if (lane->receiver.joinable()) lane->receiver.join();
  }

  // --- merge and report ---------------------------------------------------
  LaneStats merged;
  std::uint64_t outstanding = 0;
  std::size_t dead_lanes = 0;
  for (auto& lane : lanes) {
    const LaneStats& stats = lane->stats;
    merged.sent += stats.sent;
    merged.received += stats.received;
    merged.ok += stats.ok;
    merged.shed += stats.shed;
    merged.deadline += stats.deadline;
    merged.other_errors += stats.other_errors;
    merged.fallback += stats.fallback;
    merged.stale += stats.stale;
    merged.cached += stats.cached;
    merged.send_failures += stats.send_failures;
    merged.request_retries += stats.request_retries;
    // The first successful connect also counts as a "reconnect" in the
    // lane's own bookkeeping; report re-establishments only.
    merged.reconnects += stats.reconnects > 0 ? stats.reconnects - 1 : 0;
    merged.connect_failures += stats.connect_failures;
    merged.lost_inflight += stats.lost_inflight;
    merged.observes_sent += stats.observes_sent;
    merged.client_hist.merge(stats.client_hist);
    merged.predictor_hist.merge(stats.predictor_hist);
    outstanding += lane->outstanding.load(std::memory_order_acquire);
    if (lane->dead) ++dead_lanes;
  }
  const double achieved_rps =
      send_wall_s > 0.0 ? static_cast<double>(merged.received) / send_wall_s
                        : 0.0;
  const double offered_rps =
      send_wall_s > 0.0 ? static_cast<double>(merged.sent) / send_wall_s : 0.0;

  std::cout << "sent " << merged.sent << ", received " << merged.received
            << " (ok " << merged.ok << ", shed " << merged.shed
            << ", deadline " << merged.deadline << ", errors "
            << merged.other_errors << ", unanswered " << outstanding << ")\n";
  std::cout << "offered " << offered_rps << " rps, achieved " << achieved_rps
            << " rps over " << send_wall_s << " s\n";
  std::cout << "degraded: " << merged.fallback << " fallback, " << merged.stale
            << " stale, " << merged.cached << " cache hits\n";
  std::cout << "transport: " << merged.reconnects << " reconnects, "
            << merged.connect_failures << " connect failures, "
            << merged.send_failures << " send failures, "
            << merged.request_retries << " request retries, "
            << merged.lost_inflight << " lost in-flight, " << dead_lanes
            << " dead lane(s)";
  if (config.observe_scale > 0.0)
    std::cout << "; " << merged.observes_sent << " observe frames (scale "
              << config.observe_scale << ")";
  std::cout << "\n";
  const auto print_hist = [](const char* label, const LatencyHistogram& hist) {
    std::cout << label << " p50 " << hist.percentile_s(50.0) * 1e3
              << " ms, p99 " << hist.percentile_s(99.0) * 1e3
              << " ms, p99.9 " << hist.percentile_s(99.9) * 1e3
              << " ms, max " << hist.max_s() * 1e3 << " ms ("
              << hist.total() << " samples)\n";
  };
  print_hist("client   ", merged.client_hist);
  print_hist("predictor", merged.predictor_hist);

  if (!config.json_out.empty()) {
    std::ofstream json(config.json_out);
    if (!json) {
      std::cerr << "epp_loadgen: cannot write " << config.json_out << "\n";
      return 1;
    }
    // Layout contract with lint/canon.hpp (the epp_replay
    // canonicalizer): wall-clock measurements live under "timing",
    // which is stripped before runs are byte-compared; "provenance"
    // records the exact (seed, stream) plan, lane count and arrival
    // process so a trajectory is attributable to its experiment.
    json << "{\n"
         << "  \"bench\": \"serve\",\n"
         << "  \"provenance\": {\n"
         << "    \"seed\": " << config.seed << ",\n"
         << "    \"lane_streams\": \"1..connections, scheduler 0x407\",\n"
         << "    \"connections\": " << config.connections << ",\n"
         << "    \"target_rps\": " << config.rps << ",\n"
         << "    \"configured_duration_s\": " << config.duration_s << ",\n"
         << "    \"hot_fraction\": " << config.hot_fraction << ",\n"
         << "    \"arrivals\": \"" << (config.poisson ? "poisson" : "uniform")
         << "\",\n"
         << "    \"retry_budget\": " << config.retry_budget << ",\n"
         << "    \"observe_scale\": " << config.observe_scale << "\n"
         << "  },\n"
         << "  \"timing\": {\n"
         << "    \"offered_rps\": " << offered_rps << ",\n"
         << "    \"achieved_rps\": " << achieved_rps << ",\n"
         << "    \"send_wall_s\": " << send_wall_s << ",\n"
         << "    \"client_latency\": " << json_quantiles(merged.client_hist)
         << ",\n"
         << "    \"predictor_latency\": "
         << json_quantiles(merged.predictor_hist) << "\n"
         << "  },\n"
         << "  \"sent\": " << merged.sent << ",\n"
         << "  \"received\": " << merged.received << ",\n"
         << "  \"ok\": " << merged.ok << ",\n"
         << "  \"shed\": " << merged.shed << ",\n"
         << "  \"deadline_exceeded\": " << merged.deadline << ",\n"
         << "  \"other_errors\": " << merged.other_errors << ",\n"
         << "  \"unanswered\": " << outstanding << ",\n"
         << "  \"fallback\": " << merged.fallback << ",\n"
         << "  \"stale\": " << merged.stale << ",\n"
         << "  \"cached\": " << merged.cached << ",\n"
         << "  \"reconnects\": " << merged.reconnects << ",\n"
         << "  \"connect_failures\": " << merged.connect_failures << ",\n"
         << "  \"send_failures\": " << merged.send_failures << ",\n"
         << "  \"request_retries\": " << merged.request_retries << ",\n"
         << "  \"lost_inflight\": " << merged.lost_inflight << ",\n"
         << "  \"dead_lanes\": " << dead_lanes << ",\n"
         << "  \"observes_sent\": " << merged.observes_sent << "\n"
         << "}\n";
    std::cerr << "wrote " << config.json_out << "\n";
  }

  // A run that answered nothing (server never reachable) fails; a run
  // that survived chaos with some answers succeeds — the counters tell
  // the damage story.
  return merged.received == 0 ? 1 : 0;
} catch (const std::exception& error) {
  std::cerr << "epp_loadgen: " << error.what() << "\n\n";
  return usage(std::cerr);
}
