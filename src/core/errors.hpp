// Typed failures of the prediction methods.
//
// The predictors historically threw the raw standard exceptions of
// whatever subsystem failed (out_of_range from the hydra model,
// runtime_error from solvers, ...), which forced callers to string-match
// to tell "not calibrated" from "diverged". These types give every
// failure mode a catchable identity; the serving layer (src/svc) maps
// them onto its wire-level error taxonomy.
//
// Each derives from the standard exception the old code threw, so
// existing catch sites keep working.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace epp::core {

/// A method was asked about a server (or companion model) it was never
/// calibrated for. Configuration error: retrying cannot help.
struct NotCalibratedError : std::out_of_range {
  using std::out_of_range::out_of_range;
};

/// The layered solver exhausted its iteration budget without meeting the
/// convergence criterion; the last iterate is untrusted as a point
/// prediction. Deterministic for a given model, so not retryable either.
/// clamped_rt_s carries that last iterate's mean response time (0 when
/// unavailable): near the saturation knee the fixed point settles into a
/// sub-percent limit cycle, and order-level consumers — the capacity
/// bisection asking "which side of the goal?" — may use it knowingly.
struct SolverDivergedError : std::runtime_error {
  SolverDivergedError(const std::string& message, int iterations_run,
                      double clamped_rt_s_ = 0.0)
      : std::runtime_error(message),
        iterations(iterations_run),
        clamped_rt_s(clamped_rt_s_) {}
  int iterations = 0;
  double clamped_rt_s = 0.0;
};

/// A workload failed service-boundary validation (see validate_workload).
struct InvalidWorkloadError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

}  // namespace epp::core
