// epp_verify — semantic verification for pipeline artifacts: structural
// lint first, then the EPP-SEM analyzers (interval-proven HYDRA curve
// sanity, LQN convergence pre-check, fallback-chain coverage) on
// everything that parsed cleanly. See src/lint/verify.hpp for the rule
// catalog.
//
//   epp_verify [--json] [flags] FILE...
//
// FILEs are `.epp` bundles, `.lqn` models, `.wkl` workload grids or
// `.fspec` fault specs (sniffed by extension, then content). Refutations
// carry concrete witnesses (the client count where a curve goes
// negative, the chain that dead-ends) in the fix-it hint.
//
// Exit code is the maximum severity found: 0 clean or notes only,
// 1 warnings, 2 errors. Usage errors exit 2.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lint/diagnostic.hpp"
#include "lint/verify.hpp"
#include "util/cli.hpp"

namespace {

namespace cli = epp::util::cli;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--json] [flags] FILE...\n"
      "  FILEs: .epp bundles, .lqn models, .wkl workload grids,\n"
      "         .fspec fault specs\n"
      "  --json                  machine-readable findings on stdout\n"
      "  --no-fallback           analyze chains with fallback disabled\n"
      "  --no-stale              analyze chains with the stale store off\n"
      "  --breaker-threshold N   breaker failure threshold (0 disarms)\n"
      "  --max-clients-factor F  verified client range, x clients-at-max\n"
      "exit code: 0 clean/notes, 1 warnings, 2 errors\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  epp::lint::VerifyOptions options;
  std::vector<std::string> files;
  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-fallback") {
      options.resilience.fallback_enabled = false;
    } else if (arg == "--no-stale") {
      options.resilience.serve_stale = false;
    } else if (arg == "--breaker-threshold") {
      if (++i >= argc) return usage(argv[0]);
      options.resilience.breaker_failure_threshold =
          static_cast<int>(cli::parse_int(arg, argv[i], 0, 1'000'000));
    } else if (arg == "--max-clients-factor") {
      if (++i >= argc) return usage(argv[0]);
      options.max_clients_factor = cli::parse_positive_double(arg, argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  } catch (const cli::UsageError& error) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.what());
    return usage(argv[0]);
  }
  if (files.empty()) return usage(argv[0]);

  epp::lint::Diagnostics diagnostics;
  for (const std::string& file : files)
    epp::lint::verify_artifact_file(file, options, diagnostics);
  diagnostics.sort_by_location();

  if (json) {
    std::fputs(epp::lint::render_json(diagnostics).c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (diagnostics.empty()) {
    std::printf("verified: %zu artifact(s), no findings\n", files.size());
  } else {
    std::fputs(epp::lint::render_text(diagnostics).c_str(), stdout);
  }
  return epp::lint::exit_code(diagnostics);
}
