#include "calib/catalog.hpp"

#include <stdexcept>

namespace epp::calib {

const std::vector<ServerRecord>& trade_catalog() {
  static const std::vector<ServerRecord> kCatalog{
      {"AppServF", sim::trade::app_serv_f(), core::arch_f(), true, 0.0},
      {"AppServVF", sim::trade::app_serv_vf(), core::arch_vf(), true, 0.0},
      {"AppServS", sim::trade::app_serv_s(), core::arch_s(), false, 0.0},
  };
  return kCatalog;
}

const ServerRecord& catalog_record(const std::string& name) {
  for (const ServerRecord& record : trade_catalog())
    if (record.name == name) return record;
  throw std::invalid_argument("unknown server '" + name + "'");
}

sim::trade::ServerSpec spec_for(const std::string& name) {
  return catalog_record(name).sim;
}

core::ServerArch arch_for(const std::string& name) {
  return catalog_record(name).arch;
}

const std::vector<std::string>& server_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const ServerRecord& record : trade_catalog())
      names.push_back(record.name);
    return names;
  }();
  return kNames;
}

}  // namespace epp::calib
