// The layered queuing solver: the EPP stand-in for LQNS.
//
// Solving proceeds in three steps:
//   1. Flatten: per reference task (workload class), compute visit ratios
//      through the call graph and accumulate per-processor service demands.
//      For processor-sharing processors and exponential demands this
//      flattening is exact for mean values (BCMP separability).
//   2. Layer: task thread/connection pools that could constrain throughput
//      below the processor bound get a surrogate multiserver station whose
//      demand is the task's light-load execution time (own demand plus
//      nested synchronous calls) — the layered correction.
//   3. Solve the resulting closed multiclass network with MVA, using the
//      configured convergence criterion (paper: 20 ms for LQNS).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lqn/model.hpp"
#include "lqn/mva.hpp"

namespace epp::lqn {

struct SolverOptions {
  /// Fixed-point stopping rule on per-class response times. The paper's
  /// LQNS runs used 20 ms (0.020); EPP defaults tighter since its solver
  /// is cheap, but experiments reproducing figure 3 set 0.020.
  double convergence_tol_s = 1e-6;
  int max_iterations = 100000;
  /// Bound on the outer (software/hardware alternation) fixed point. Near
  /// the saturation knee the loop needs the adaptive-damping ramp (about
  /// 70 iterations); converged solves exit early regardless of the bound.
  int max_layer_iterations = 160;
  /// Use exact single-class MVA when applicable (integer population below
  /// this bound). 0 disables; the default mirrors LQNS's approximate path.
  std::size_t exact_population_limit = 0;
  /// Model task thread-pool contention with surrogate multiserver stations
  /// when the pool could constrain throughput.
  bool model_task_contention = true;
  /// Predictor-level contract: when set, predictors surface a
  /// non-converged solve as core::SolverDivergedError instead of silently
  /// returning the clamped last iterate. LayeredSolver::solve itself never
  /// throws on divergence — it always reports through SolveResult::converged.
  bool require_convergence = true;
};

struct ClassPrediction {
  std::string name;           // reference task name
  bool open = false;          // open (constant-rate) workload class?
  double population = 0.0;    // closed classes
  double think_time_s = 0.0;
  double response_time_s = 0.0;  // mean, think time excluded
  double throughput_rps = 0.0;   // open classes: the arrival rate
};

struct SolveResult {
  std::vector<ClassPrediction> classes;
  std::map<std::string, double> processor_utilization;  // per processor
  std::map<std::string, double> task_utilization;       // per served task
  int iterations = 0;
  bool converged = false;
  double solve_time_s = 0.0;

  const ClassPrediction& cls(const std::string& name) const;
  double response_time_s(const std::string& name) const {
    return cls(name).response_time_s;
  }
  double throughput_rps(const std::string& name) const {
    return cls(name).throughput_rps;
  }
  /// Workload-weighted mean response time across all classes.
  double mean_response_time_s() const;
  double total_throughput_rps() const;
};

class LayeredSolver {
 public:
  explicit LayeredSolver(SolverOptions options = {}) : options_(options) {}

  const SolverOptions& options() const noexcept { return options_; }

  /// Validate and solve. Throws std::invalid_argument on malformed models.
  SolveResult solve(const Model& model) const;

  /// Asymptotic total-throughput estimate (the LQN prediction of "max
  /// throughput"): population -> infinity limit with class demands
  /// weighted by population share. Because the realised mix at saturation
  /// shifts toward cheaper classes, the true limit can exceed this by a
  /// few percent on strongly heterogeneous mixes.
  double max_throughput_bound_rps(const Model& model) const;

 private:
  SolverOptions options_;
};

}  // namespace epp::lqn
