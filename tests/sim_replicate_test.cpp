// Parallel independent replications: determinism guarantees.
//
// The SimReplicate.* tests also run under ThreadSanitizer (see the
// epp_tsan_concurrency gtest filter in tests/CMakeLists.txt) — the
// 8-thread cases double as the data-race gate for run_replications.
#include "sim/replicate.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace epp::sim {
namespace {

trade::TestbedConfig small_config(std::uint64_t seed = 42) {
  trade::TestbedConfig config =
      trade::typical_workload(trade::app_serv_f(), 120, seed);
  config.warmup_s = 2.0;
  config.measure_s = 10.0;
  return config;
}

void expect_bitwise_equal(const trade::RunResult& a,
                          const trade::RunResult& b) {
  EXPECT_EQ(a.mean_rt_s, b.mean_rt_s);
  EXPECT_EQ(a.p90_rt_s, b.p90_rt_s);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.app_cpu_utilization, b.app_cpu_utilization);
  EXPECT_EQ(a.db_cpu_utilization, b.db_cpu_utilization);
  EXPECT_EQ(a.disk_utilization, b.disk_utilization);
  EXPECT_EQ(a.buy_request_fraction, b.buy_request_fraction);
  EXPECT_EQ(a.db_calls_per_request, b.db_calls_per_request);
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (const auto& [name, cr] : a.per_class) {
    const auto it = b.per_class.find(name);
    ASSERT_NE(it, b.per_class.end()) << name;
    EXPECT_EQ(cr.completions, it->second.completions) << name;
    EXPECT_EQ(cr.mean_rt_s, it->second.mean_rt_s) << name;
    EXPECT_EQ(cr.p90_rt_s, it->second.p90_rt_s) << name;
    EXPECT_EQ(cr.throughput_rps, it->second.throughput_rps) << name;
  }
}

TEST(SimReplicate, OneReplicationMatchesPlainRunBitwise) {
  const trade::TestbedConfig config = small_config();
  const trade::RunResult plain = trade::run_testbed(config);
  const ReplicatedResult replicated = run_replications(config, {});
  ASSERT_EQ(replicated.per_replication.size(), 1u);
  expect_bitwise_equal(plain, replicated.summary);
  EXPECT_EQ(replicated.mean_rt_stddev_s, 0.0);
}

TEST(SimReplicate, ReplicationSeedsAreDistinctAndStable) {
  EXPECT_EQ(replication_seed(42, 0), 42u);  // rep 0 is the base seed
  EXPECT_NE(replication_seed(42, 1), replication_seed(42, 2));
  EXPECT_EQ(replication_seed(42, 3), replication_seed(42, 3));
  EXPECT_NE(replication_seed(42, 1), replication_seed(43, 1));
}

TEST(SimReplicate, MergedResultIsThreadCountInvariant) {
  const trade::TestbedConfig config = small_config();
  ReplicationOptions serial;
  serial.replications = 4;
  const ReplicatedResult on_one_thread = run_replications(config, serial);

  util::ThreadPool pool(8);
  ReplicationOptions parallel = serial;
  parallel.pool = &pool;
  const ReplicatedResult on_eight_threads = run_replications(config, parallel);

  expect_bitwise_equal(on_one_thread.summary, on_eight_threads.summary);
  EXPECT_EQ(on_one_thread.mean_rt_stddev_s, on_eight_threads.mean_rt_stddev_s);
  EXPECT_EQ(on_one_thread.mean_rt_ci95_s, on_eight_threads.mean_rt_ci95_s);
  ASSERT_EQ(on_one_thread.per_replication.size(),
            on_eight_threads.per_replication.size());
  for (std::size_t i = 0; i < on_one_thread.per_replication.size(); ++i)
    expect_bitwise_equal(on_one_thread.per_replication[i],
                         on_eight_threads.per_replication[i]);
  // Distinct seeds produce distinct samples: spread is real, not zero.
  EXPECT_GT(on_one_thread.mean_rt_stddev_s, 0.0);
}

TEST(SimReplicate, ClusterMergeIsThreadCountInvariant) {
  trade::ClusterConfig cluster;
  cluster.servers = {trade::app_serv_f(), trade::app_serv_s()};
  trade::ClusterClassSpec browse;
  browse.name = "browse";
  browse.clients_per_server = {80, 40};
  trade::ClusterClassSpec buy;
  buy.name = "buy";
  buy.type = trade::UserType::kBuy;
  buy.clients_per_server = {20, 10};
  cluster.classes = {browse, buy};
  cluster.warmup_s = 2.0;
  cluster.measure_s = 8.0;
  cluster.seed = 7;

  ReplicationOptions serial;
  serial.replications = 3;
  const ClusterReplicatedResult a = run_cluster_replications(cluster, serial);

  util::ThreadPool pool(8);
  ReplicationOptions parallel = serial;
  parallel.pool = &pool;
  const ClusterReplicatedResult b = run_cluster_replications(cluster, parallel);

  EXPECT_EQ(a.summary.total_throughput_rps, b.summary.total_throughput_rps);
  EXPECT_EQ(a.summary.db_cpu_utilization, b.summary.db_cpu_utilization);
  EXPECT_EQ(a.summary.disk_utilization, b.summary.disk_utilization);
  EXPECT_EQ(a.summary.app_cpu_utilization, b.summary.app_cpu_utilization);
  ASSERT_EQ(a.summary.per_bucket.size(), b.summary.per_bucket.size());
  for (const auto& [name, cr] : a.summary.per_bucket) {
    const auto it = b.summary.per_bucket.find(name);
    ASSERT_NE(it, b.summary.per_bucket.end()) << name;
    EXPECT_EQ(cr.completions, it->second.completions) << name;
    EXPECT_EQ(cr.mean_rt_s, it->second.mean_rt_s) << name;
    EXPECT_EQ(cr.p90_rt_s, it->second.p90_rt_s) << name;
  }
  EXPECT_EQ(a.mean_rt_stddev_s, b.mean_rt_stddev_s);
}

TEST(SimReplicate, KeepSamplesConcatenatesInReplicationOrder) {
  const trade::TestbedConfig config = small_config();
  ReplicationOptions options;
  options.replications = 2;
  options.keep_samples = true;
  const ReplicatedResult replicated = run_replications(config, options);
  std::size_t expected = 0;
  for (const trade::RunResult& rep : replicated.per_replication)
    expected += rep.rt_samples_s.size();
  EXPECT_EQ(replicated.summary.rt_samples_s.size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(SimReplicate, ZeroReplicationsRejected) {
  ReplicationOptions options;
  options.replications = 0;
  EXPECT_THROW(run_replications(small_config(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace epp::sim
