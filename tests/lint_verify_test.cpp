// The EPP-SEM semantic verifier: the interval abstract domain and the
// three analyzer families it powers (HYDRA curve rules, the LQN
// convergence pre-checker, fallback-chain coverage).
//
// Mirrors lint_test.cpp's structure: a golden corpus of semantically
// defective but *structurally clean* artifacts under
// tests/lint_corpus/semantic (bundles) and tests/lint_corpus/lqn (LQN
// models), each written to trip exactly one EPP-SEM rule, pinned by rule
// ID, severity, source line and tool exit code. The clean direction pins
// the gate's no-false-positive guarantee: calibration-pipeline output and
// the paper's testbed model must verify with zero semantic findings.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "calib/bundle.hpp"
#include "lint/diagnostic.hpp"
#include "lint/interval.hpp"
#include "lint/lint.hpp"
#include "lint/verify.hpp"
#include "lqn/parser.hpp"
#include "lqn/solver.hpp"

namespace epp {
namespace {

using lint::Diagnostic;
using lint::Diagnostics;
using lint::Interval;
using lint::Proof;
using lint::Severity;
using lint::Witness;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string corpus_path(const std::string& relative) {
  return std::string(EPP_LINT_CORPUS_DIR) + "/" + relative;
}

// --- the interval domain ---------------------------------------------------

TEST(IntervalDomain, PointAndSpanConstruction) {
  const Interval p = lint::point(3.5);
  EXPECT_EQ(p.lo, 3.5);
  EXPECT_EQ(p.hi, 3.5);
  const Interval s = lint::span(7.0, -2.0);  // either order
  EXPECT_EQ(s.lo, -2.0);
  EXPECT_EQ(s.hi, 7.0);
}

TEST(IntervalDomain, ArithmeticEnclosesAndWidensOutward) {
  const Interval a = lint::span(1.0, 2.0);
  const Interval b = lint::span(-3.0, 4.0);

  const Interval sum = lint::add(a, b);
  EXPECT_LE(sum.lo, -2.0);
  EXPECT_GE(sum.hi, 6.0);
  EXPECT_LT(sum.lo, -2.0);  // strictly widened one ulp outward
  EXPECT_GT(sum.hi, 6.0);

  const Interval diff = lint::sub(a, b);
  EXPECT_LT(diff.lo, -3.0);
  EXPECT_GT(diff.hi, 5.0);

  // mul takes the min/max of all four endpoint products.
  const Interval prod = lint::mul(a, b);
  EXPECT_LT(prod.lo, -6.0);
  EXPECT_GT(prod.hi, 8.0);

  const Interval join = lint::hull(a, b);
  EXPECT_EQ(join.lo, -3.0);  // hull is exact, no widening
  EXPECT_EQ(join.hi, 4.0);
}

TEST(IntervalDomain, FunctionFormsEncloseTrueImage) {
  const Interval x = lint::span(10.0, 20.0);

  const Interval line = lint::linear(-0.5, 3.0, x);
  EXPECT_LE(line.lo, -7.0);
  EXPECT_GE(line.hi, -2.0);

  const Interval exp_img = lint::scale_exp(2.0, 0.1, x);
  EXPECT_LE(exp_img.lo, 2.0 * std::exp(1.0));
  EXPECT_GE(exp_img.hi, 2.0 * std::exp(2.0));

  // Negative coefficient flips the monotone direction; the enclosure
  // must still cover both endpoint images.
  const Interval neg = lint::scale_exp(-1.0, 0.1, x);
  EXPECT_LE(neg.lo, -std::exp(2.0));
  EXPECT_GE(neg.hi, -std::exp(1.0));

  const Interval pow_img = lint::power(3.0, -0.5, x);
  EXPECT_LE(pow_img.lo, 3.0 / std::sqrt(20.0));
  EXPECT_GE(pow_img.hi, 3.0 / std::sqrt(10.0));
}

TEST(IntervalDomain, ProveAtLeastProvesPositivity) {
  // 0.01 * exp(0.004 x) is positive everywhere: provable by intervals.
  const auto ext = [](const Interval& x) {
    return lint::scale_exp(0.01, 0.004, x);
  };
  const auto pt = [](double x) { return 0.01 * std::exp(0.004 * x); };
  EXPECT_EQ(lint::prove_at_least(ext, pt, 0.0, 1000.0, 0.0), Proof::kProven);
}

TEST(IntervalDomain, ProveAtLeastRefutesWithConcreteWitness) {
  // -0.003 x + 2 crosses zero at x = 666.7: refuted, witness beyond it.
  const auto ext = [](const Interval& x) { return lint::linear(-0.003, 2.0, x); };
  const auto pt = [](double x) { return -0.003 * x + 2.0; };
  Witness witness;
  EXPECT_EQ(lint::prove_at_least(ext, pt, 0.0, 1000.0, 0.0, &witness),
            Proof::kRefuted);
  EXPECT_GT(witness.x, 666.0);
  EXPECT_LE(witness.x, 1000.0);
  EXPECT_LT(witness.value, 0.0);
  EXPECT_DOUBLE_EQ(witness.value, pt(witness.x));
}

TEST(IntervalDomain, ProveAtLeastEmptyRangeIsVacuouslyProven) {
  const auto ext = [](const Interval& x) { return lint::linear(1.0, -1e9, x); };
  const auto pt = [](double x) { return x - 1e9; };
  EXPECT_EQ(lint::prove_at_least(ext, pt, 5.0, 4.0, 0.0), Proof::kProven);
}

TEST(IntervalDomain, PreferIntegerWitnessSnapsToWholeClients) {
  const auto pt = [](double x) { return -0.003 * x + 2.0; };
  Witness witness{700.4, pt(700.4)};
  lint::prefer_integer_witness(pt, 0.0, 1000.0, 0.0, &witness);
  EXPECT_EQ(witness.x, std::floor(witness.x)) << "witness not integral";
  EXPECT_LT(witness.value, 0.0);
  EXPECT_DOUBLE_EQ(witness.value, pt(witness.x));
}

// --- golden corpus: one semantically defective artifact per rule -----------

struct GoldenCase {
  const char* file;       // relative to tests/lint_corpus
  const char* rule;       // the EPP-SEM rule the artifact trips
  Severity severity;      // at which severity
  int line;               // on which line (0 = whole artifact)
  int expected_exit;      // epp_verify exit code for the file
};

class VerifyCorpus : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(VerifyCorpus, FlagsExpectedRuleAtExpectedLocation) {
  const GoldenCase& golden = GetParam();
  const std::string path = corpus_path(golden.file);
  Diagnostics diagnostics;
  lint::verify_artifact_file(path, lint::VerifyOptions{}, diagnostics);

  const Diagnostic* match = nullptr;
  for (const Diagnostic& diagnostic : diagnostics.all())
    if (diagnostic.rule == golden.rule) match = &diagnostic;
  ASSERT_NE(match, nullptr)
      << golden.file << " did not trip " << golden.rule << "; got:\n"
      << lint::render_text(diagnostics);
  EXPECT_EQ(match->severity, golden.severity) << golden.file;
  EXPECT_EQ(match->location.line, golden.line) << golden.file;
  EXPECT_EQ(match->location.file, path) << golden.file;
  EXPECT_EQ(lint::exit_code(diagnostics), golden.expected_exit)
      << golden.file << " findings:\n"
      << lint::render_text(diagnostics);
}

INSTANTIATE_TEST_SUITE_P(
    HydraCurves, VerifyCorpus,
    ::testing::Values(
        GoldenCase{"semantic/negative_upper.epp", "EPP-SEM-001",
                   Severity::kError, 14, 2},
        GoldenCase{"semantic/discontinuity.epp", "EPP-SEM-002",
                   Severity::kError, 15, 2},
        GoldenCase{"semantic/nonmonotone.epp", "EPP-SEM-003",
                   Severity::kWarning, 14, 1},
        GoldenCase{"semantic/mix_collapse.epp", "EPP-SEM-004",
                   Severity::kWarning, 17, 1},
        GoldenCase{"semantic/rel2_extrapolation.epp", "EPP-SEM-005",
                   Severity::kWarning, 11, 1}),
    [](const auto& test_info) {
      std::string name = test_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(test_info.param.line);
    });

INSTANTIATE_TEST_SUITE_P(
    LqnConvergence, VerifyCorpus,
    ::testing::Values(
        GoldenCase{"lqn/open_overload.lqn", "EPP-SEM-010", Severity::kError,
                   6, 2},
        GoldenCase{"lqn/diverging.lqn", "EPP-SEM-011", Severity::kError, 10,
                   2},
        GoldenCase{"lqn/slow_converging.lqn", "EPP-SEM-012",
                   Severity::kWarning, 7, 1}),
    [](const auto& test_info) {
      std::string name = test_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(test_info.param.line);
    });

INSTANTIATE_TEST_SUITE_P(
    FallbackChains, VerifyCorpus,
    ::testing::Values(GoldenCase{"semantic/chain_dead_end.epp", "EPP-SEM-020",
                                 Severity::kError, 8, 2}),
    [](const auto& test_info) {
      std::string name = test_info.param.rule;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_" + std::to_string(test_info.param.line);
    });

// --- counterexample witnesses ----------------------------------------------

TEST(VerifyWitness, NegativeUpperCarriesIntegerClientWitness) {
  // The refuted bundle's finding must name a concrete whole-number load
  // the operator can reproduce: N = 1449 clients for this artifact.
  Diagnostics diagnostics;
  lint::verify_artifact_file(corpus_path("semantic/negative_upper.epp"),
                             lint::VerifyOptions{}, diagnostics);
  const Diagnostic* match = nullptr;
  for (const Diagnostic& diagnostic : diagnostics.all())
    if (diagnostic.rule == "EPP-SEM-001") match = &diagnostic;
  ASSERT_NE(match, nullptr) << lint::render_text(diagnostics);
  EXPECT_NE(match->hint.find("witness: N = 1449 clients"), std::string::npos)
      << match->hint;
  EXPECT_NE(match->message.find("N = 1449"), std::string::npos)
      << match->message;
}

// --- acceptance: the pre-checker front-runs the runtime failure ------------

TEST(VerifyAcceptance, DivergingModelIsFlaggedBeforeTheSolverFails) {
  // The whole point of EPP-SEM-011: this model only failed at runtime
  // before (LayeredSolver reports converged=false, surfaced as
  // SolverDivergedError through LqnPredictor). The static pre-checker
  // must flag it without solving anything.
  const std::string text = read_file(corpus_path("lqn/diverging.lqn"));
  const lqn::Model model = lqn::parse_model(text);

  Diagnostics diagnostics;
  const lint::LqnSourceIndex index = lint::index_lqn_source(text);
  lint::verify_lqn_model(model, "diverging.lqn", diagnostics, &index);
  ASSERT_TRUE(diagnostics.has_errors()) << lint::render_text(diagnostics);
  EXPECT_EQ(diagnostics.first_at_least(Severity::kError)->rule,
            "EPP-SEM-011");

  // ...and the runtime failure it predicts is real.
  const lqn::SolveResult result = lqn::LayeredSolver().solve(model);
  EXPECT_FALSE(result.converged)
      << "diverging.lqn converged; the corpus case no longer reproduces "
         "the runtime failure EPP-SEM-011 is supposed to front-run";
}

// --- fallback-chain options ------------------------------------------------

TEST(VerifyChains, SingleLinkChainWarnsWhenBreakersCanOpenWithoutStale) {
  // The clean bundle is fully covered, but with fallback disabled every
  // chain is a single link; add open-able breakers and no stale serving
  // and each (method, server) request is one failure away from a dead
  // end — EPP-SEM-021.
  Diagnostics clean_check;
  calib::BundleParseInfo info;
  const calib::CalibrationBundle bundle = calib::parse_bundle_text(
      read_file(corpus_path("clean/trade.epp")), "trade.epp", clean_check,
      &info);
  ASSERT_FALSE(clean_check.has_errors()) << lint::render_text(clean_check);

  lint::VerifyOptions options;
  options.resilience.fallback_enabled = false;
  options.resilience.serve_stale = false;
  ASSERT_GT(options.resilience.breaker_failure_threshold, 0);
  Diagnostics diagnostics;
  lint::verify_fallback_chains(bundle, "trade.epp", &info, options,
                               diagnostics);
  ASSERT_FALSE(diagnostics.empty());
  EXPECT_FALSE(diagnostics.has_errors()) << lint::render_text(diagnostics);
  for (const Diagnostic& diagnostic : diagnostics.all()) {
    EXPECT_EQ(diagnostic.rule, "EPP-SEM-021");
    EXPECT_EQ(diagnostic.severity, Severity::kWarning);
  }

  // Serving stale entries keeps a degraded answer available, so the
  // same configuration with serve_stale back on is quiet.
  options.resilience.serve_stale = true;
  Diagnostics quiet;
  lint::verify_fallback_chains(bundle, "trade.epp", &info, options, quiet);
  EXPECT_TRUE(quiet.empty()) << lint::render_text(quiet);
}

// --- clean corpus: no false positives --------------------------------------

TEST(VerifyCleanCorpus, CalibratedBundleHasZeroSemanticFindings) {
  Diagnostics diagnostics;
  lint::verify_artifact_file(corpus_path("clean/trade.epp"),
                             lint::VerifyOptions{}, diagnostics);
  EXPECT_TRUE(diagnostics.empty()) << lint::render_text(diagnostics);
}

TEST(VerifyCleanCorpus, FreshlyCalibratedBundleVerifiesClean) {
  // The guarantee the epp_calibrate self-check and the epp_sweep
  // pre-serve gate rely on: what the pipeline produces, the verifier
  // accepts (mix skipped for speed, as in the lint twin of this test).
  calib::CalibrationOptions options;
  options.measure_mix = false;
  const calib::CalibrationBundle bundle = calib::calibrate(options);
  Diagnostics diagnostics;
  lint::verify_bundle(bundle, "fresh.epp", nullptr, lint::VerifyOptions{},
                      diagnostics);
  EXPECT_TRUE(diagnostics.empty()) << lint::render_text(diagnostics);
}

TEST(VerifyCleanCorpus, TradeLqnModelHasNoSemanticFindings) {
  Diagnostics diagnostics;
  lint::verify_artifact_file(std::string(EPP_MODELS_DIR) + "/trade.lqn",
                             lint::VerifyOptions{}, diagnostics);
  for (const Diagnostic& diagnostic : diagnostics.all())
    EXPECT_TRUE(diagnostic.rule.find("EPP-SEM-") == std::string::npos)
        << lint::render_text(diagnostics);
  EXPECT_EQ(lint::exit_code(diagnostics), 0);
}

}  // namespace
}  // namespace epp
